/**
 * @file
 * Equivalence proofs for the hot-path optimizations: the flat-array
 * cache fast path, the pre-decoded instruction cache, and the
 * early-exit reverse reconstruction scan must be *bit-identical* in
 * every observable counter to the straightforward reference
 * formulations they replaced.
 *
 * Three layers of evidence:
 *   1. randomized model checking against naive reference models written
 *      independently of the optimized data layout;
 *   2. an exhaustive full-scan reference for the reverse reconstructor,
 *      compared on state snapshots and statistics;
 *   3. golden end-to-end counters for all 16 Table-2 policies, captured
 *      from the pre-optimization implementation of this simulator.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <random>
#include <vector>

#include "cache/cache.hh"
#include "cache/hierarchy.hh"
#include "core/cache_reconstructor.hh"
#include "core/sampled_sim.hh"
#include "core/skip_log.hh"
#include "core/warmup.hh"
#include "func/funcsim.hh"
#include "isa/inst.hh"
#include "util/snapshot.hh"
#include "workload/synthetic.hh"

namespace
{

using namespace rsr;

// ==========================================================================
// 1. Reference cache model: per-set blocks with an explicit recency list,
//    written for clarity with no flat arrays, masks, or inlining.
// ==========================================================================

class ReferenceCache
{
  public:
    explicit ReferenceCache(const cache::CacheParams &p) : params(p)
    {
        numSets = static_cast<unsigned>(
            p.sizeBytes / (p.lineBytes * p.assoc));
        sets.resize(numSets);
        for (auto &s : sets) {
            s.ways.resize(p.assoc);
            for (unsigned w = 0; w < p.assoc; ++w)
                s.recency.push_back(w);
        }
    }

    cache::AccessOutcome
    access(std::uint64_t addr, bool is_store)
    {
        cache::AccessOutcome out;
        Set &s = sets[setOf(addr)];
        const std::uint64_t tag = tagOf(addr);
        const bool wb = params.writePolicy ==
                        cache::WritePolicy::WriteBackAllocate;
        for (unsigned w = 0; w < params.assoc; ++w) {
            if (s.ways[w].valid && s.ways[w].tag == tag) {
                ++stats.hits;
                out.hit = true;
                touch(s, w);
                if (is_store && wb)
                    s.ways[w].dirty = true;
                return out;
            }
        }
        ++stats.misses;
        if (is_store && !wb)
            return out;
        const unsigned victim = s.recency.back();
        if (s.ways[victim].valid && s.ways[victim].dirty) {
            out.victimDirty = true;
            out.victimLineAddr =
                (s.ways[victim].tag * numSets + setOf(addr)) *
                params.lineBytes;
            ++stats.writebacks;
        }
        s.ways[victim] = {tag, true, is_store && wb, false};
        touch(s, victim);
        ++stats.fills;
        out.allocated = true;
        return out;
    }

    void
    beginReconstruction()
    {
        for (auto &s : sets) {
            for (auto &b : s.ways)
                b.recon = false;
            s.reconCount = 0;
        }
    }

    bool
    reconstructRef(std::uint64_t addr)
    {
        Set &s = sets[setOf(addr)];
        if (s.reconCount >= params.assoc) {
            ++stats.reconIgnored;
            return false;
        }
        const std::uint64_t tag = tagOf(addr);
        int way = -1;
        for (unsigned w = 0; w < params.assoc; ++w)
            if (s.ways[w].valid && s.ways[w].tag == tag)
                way = static_cast<int>(w);
        if (way >= 0 && s.ways[way].recon) {
            ++stats.reconIgnored;
            return false;
        }
        if (way < 0) {
            way = static_cast<int>(s.recency.back());
            s.ways[way] = {tag, true, false, false};
            ++stats.fills;
        }
        s.ways[way].recon = true;
        // Ascending LRU ranks in scan order: the k-th reconstructed
        // block of a set lands at recency position k.
        s.recency.erase(std::find(s.recency.begin(), s.recency.end(),
                                  static_cast<unsigned>(way)));
        s.recency.insert(s.recency.begin() + s.reconCount,
                         static_cast<unsigned>(way));
        ++s.reconCount;
        ++stats.reconApplied;
        return true;
    }

    bool
    probe(std::uint64_t addr) const
    {
        const Set &s = sets[setOf(addr)];
        const std::uint64_t tag = tagOf(addr);
        for (unsigned w = 0; w < params.assoc; ++w)
            if (s.ways[w].valid && s.ways[w].tag == tag)
                return true;
        return false;
    }

    int
    recencyOf(std::uint64_t addr) const
    {
        const Set &s = sets[setOf(addr)];
        const std::uint64_t tag = tagOf(addr);
        for (unsigned pos = 0; pos < params.assoc; ++pos) {
            const auto &b = s.ways[s.recency[pos]];
            if (b.valid && b.tag == tag)
                return static_cast<int>(pos);
        }
        return -1;
    }

    cache::CacheStats stats;

  private:
    struct Block
    {
        std::uint64_t tag = 0;
        bool valid = false;
        bool dirty = false;
        bool recon = false;
    };
    struct Set
    {
        std::vector<Block> ways;
        std::vector<unsigned> recency; ///< way indices, MRU first
        unsigned reconCount = 0;
    };

    std::uint64_t setOf(std::uint64_t addr) const
    {
        return (addr / params.lineBytes) % numSets;
    }
    std::uint64_t tagOf(std::uint64_t addr) const
    {
        return addr / params.lineBytes / numSets;
    }
    void
    touch(Set &s, unsigned way)
    {
        s.recency.erase(
            std::find(s.recency.begin(), s.recency.end(), way));
        s.recency.insert(s.recency.begin(), way);
    }

    cache::CacheParams params;
    unsigned numSets;
    std::vector<Set> sets;
};

void
expectStatsEqual(const cache::CacheStats &a, const cache::CacheStats &b)
{
    EXPECT_EQ(a.hits, b.hits);
    EXPECT_EQ(a.misses, b.misses);
    EXPECT_EQ(a.fills, b.fills);
    EXPECT_EQ(a.writebacks, b.writebacks);
    EXPECT_EQ(a.reconApplied, b.reconApplied);
    EXPECT_EQ(a.reconIgnored, b.reconIgnored);
}

class FastpathCacheEquivalence
    : public ::testing::TestWithParam<cache::CacheParams>
{};

TEST_P(FastpathCacheEquivalence, RandomStreamWithReconstructionPhases)
{
    const cache::CacheParams p = GetParam();
    cache::Cache fast(p);
    ReferenceCache ref(p);
    std::mt19937_64 rng(0xfa57'0001);

    // A footprint a few times the cache size forces evictions; aligning
    // to odd strides exercises every set.
    const std::uint64_t footprint = p.sizeBytes * 4;
    std::vector<std::uint64_t> logged;
    for (unsigned round = 0; round < 4; ++round) {
        for (unsigned i = 0; i < 20'000; ++i) {
            const std::uint64_t addr = (rng() % footprint) & ~7ull;
            const bool is_store = (rng() & 3) == 0;
            const auto of = fast.access(addr, is_store);
            const auto orf = ref.access(addr, is_store);
            ASSERT_EQ(of.hit, orf.hit);
            ASSERT_EQ(of.allocated, orf.allocated);
            ASSERT_EQ(of.victimDirty, orf.victimDirty);
            if (of.victimDirty) {
                ASSERT_EQ(of.victimLineAddr, orf.victimLineAddr);
            }
            logged.push_back(addr);
        }
        // Reverse-reconstruction phase over the newest slice, exactly as
        // the RSR scan consumes the skip log.
        fast.beginReconstruction();
        ref.beginReconstruction();
        for (std::size_t i = logged.size(); i-- > logged.size() - 5'000;)
            ASSERT_EQ(fast.reconstructRef(logged[i]),
                      ref.reconstructRef(logged[i]));
        // Spot-check presence and recency agreement across the footprint.
        for (std::uint64_t a = 0; a < footprint;
             a += p.lineBytes * 7 + 8) {
            ASSERT_EQ(fast.probe(a), ref.probe(a));
            ASSERT_EQ(fast.recencyOf(a), ref.recencyOf(a));
        }
    }
    expectStatsEqual(fast.stats(), ref.stats);
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, FastpathCacheEquivalence,
    ::testing::Values(
        cache::CacheParams{"l1d", 32 * 1024, 4, 64,
                           cache::WritePolicy::WriteThroughNoAllocate, 1},
        cache::CacheParams{"l2", 256 * 1024, 8, 64,
                           cache::WritePolicy::WriteBackAllocate, 12},
        cache::CacheParams{"small", 8 * 1024, 2, 32,
                           cache::WritePolicy::WriteBackAllocate, 1},
        cache::CacheParams{"direct", 4 * 1024, 1, 64,
                           cache::WritePolicy::WriteThroughNoAllocate,
                           1}),
    [](const auto &info) { return info.param.name; });

// ==========================================================================
// 2. Early-exit reverse scan vs an exhaustive full-scan reference.
// ==========================================================================

/** The pre-optimization reverse scan: every logged reference in the
 *  window is applied, newest first, with no early exit. */
core::CacheReconstructionResult
referenceReconstruct(cache::MemoryHierarchy &hier,
                     const core::MemLog &log, double fraction)
{
    core::CacheReconstructionResult res;
    hier.il1().beginReconstruction();
    hier.dl1().beginReconstruction();
    hier.l2().beginReconstruction();
    const std::size_t n = log.size();
    const auto take = static_cast<std::size_t>(
        std::llround(static_cast<double>(n) * fraction));
    for (std::size_t i = n; i-- > n - take;) {
        cache::Cache &l1 =
            log.isInstr(i) ? hier.il1() : hier.dl1();
        const bool a1 = l1.reconstructRef(log.addr(i));
        const bool a2 = hier.l2().reconstructRef(log.addr(i));
        ++res.refsScanned;
        res.updatesApplied += (a1 ? 1 : 0) + (a2 ? 1 : 0);
        if (!a1 && !a2)
            ++res.refsIgnored;
    }
    return res;
}

TEST(FastpathReconstructEquivalence, EarlyExitMatchesFullScan)
{
    std::mt19937_64 rng(0xfa57'0002);
    for (const double fraction : {0.2, 0.5, 1.0}) {
        cache::MemoryHierarchy fast(
            cache::HierarchyParams::paperDefault());
        cache::MemoryHierarchy ref(
            cache::HierarchyParams::paperDefault());

        // Warm both hierarchies identically so reconstruction starts
        // from non-trivial stale state, then build a skip log with the
        // access pattern RSR records: I-line touches and data refs with
        // heavy reuse (reuse is what makes the early exit fire).
        core::MemLog log;
        for (unsigned i = 0; i < 60'000; ++i) {
            const bool is_instr = (rng() & 7) == 0;
            const std::uint64_t addr =
                is_instr ? 0x400000 + (rng() % 0x8000 & ~3ull)
                         : 0x10000000 + (rng() % 0x40000 & ~7ull);
            const bool is_store = !is_instr && (rng() & 3) == 0;
            fast.warmAccess(addr, is_store, is_instr);
            ref.warmAccess(addr, is_store, is_instr);
            log.append(0x400000 + i * 4, addr, is_instr, is_store);
        }

        const auto rf = core::reconstructCaches(fast, log, fraction);
        const auto rr = referenceReconstruct(ref, log, fraction);
        EXPECT_EQ(rf.refsScanned, rr.refsScanned) << fraction;
        EXPECT_EQ(rf.updatesApplied, rr.updatesApplied) << fraction;
        EXPECT_EQ(rf.refsIgnored, rr.refsIgnored) << fraction;
        expectStatsEqual(fast.il1().stats(), ref.il1().stats());
        expectStatsEqual(fast.dl1().stats(), ref.dl1().stats());
        expectStatsEqual(fast.l2().stats(), ref.l2().stats());
        // Full state equality: tags, flags, recency, recon counts.
        EXPECT_EQ(snapshotToBytes(fast), snapshotToBytes(ref));
    }
}

// ==========================================================================
// 3. Pre-decoded instruction cache vs decoding from the memory image.
// ==========================================================================

TEST(FastpathDecodeEquivalence, PredecodedMatchesMemoryImageDecode)
{
    const auto prog = workload::buildSynthetic(
        workload::standardWorkloadParams("gcc"));
    func::FuncSim fs(prog);
    func::DynInst d;
    for (unsigned i = 0; i < 200'000; ++i) {
        const std::uint64_t pc = fs.pc();
        if (!fs.step(&d)) {
            fs.reset();
            continue;
        }
        ASSERT_EQ(d.pc, pc);
        const isa::Inst redecoded =
            isa::decode(fs.memory().readWord(pc));
        EXPECT_EQ(isa::encode(d.inst), isa::encode(redecoded));
    }
}

// ==========================================================================
// 4. Golden end-to-end counters for all 16 Table-2 policies, captured
//    from the pre-optimization implementation (twolf, 400k insts,
//    10x2000 regimen, scaled machine). Any hot-path change that shifts
//    a single cycle, misprediction, warm update, logged record, or
//    cluster-IPC bit fails here.
// ==========================================================================

std::uint64_t
fnv1a(const void *data, std::size_t n,
      std::uint64_t h = 0xcbf29ce484222325ull)
{
    const auto *p = static_cast<const unsigned char *>(data);
    for (std::size_t i = 0; i < n; ++i) {
        h ^= p[i];
        h *= 0x100000001b3ull;
    }
    return h;
}

struct GoldenRow
{
    const char *name;
    std::uint64_t hotCycles;
    std::uint64_t branchMispredicts;
    std::uint64_t functionalUpdates;
    std::uint64_t reconstructionUpdates;
    std::uint64_t loggedRecords;
    std::uint64_t ipcHash;
};

TEST(FastpathGolden, AllTable2PoliciesBitIdentical)
{
    static const GoldenRow golden[] = {
        {"None", 110170u, 781u, 0u, 0u, 0u, 0x5d40e060a3ac8f02ull},
        {"FP (20%)", 55944u, 687u, 24833u, 0u, 0u,
         0x6f5b67003b78ee4full},
        {"FP (40%)", 51298u, 668u, 49686u, 0u, 0u,
         0x10a2c65735fb5079ull},
        {"FP (80%)", 36884u, 649u, 98882u, 0u, 0u,
         0xdce42c7112e77e86ull},
        {"S$", 39303u, 800u, 99570u, 0u, 0u, 0xd68c140fec2f8705ull},
        {"SBP", 104736u, 642u, 24025u, 0u, 0u, 0x54580252b0820a3dull},
        {"S$BP", 35534u, 643u, 123595u, 0u, 0u, 0x644328d6bd80884bull},
        {"R$ (20%)", 58903u, 800u, 0u, 5798u, 68128u,
         0x4031ebf1dc77a085ull},
        {"R$ (40%)", 53910u, 805u, 0u, 7671u, 68128u,
         0xfc7254e221e5dd55ull},
        {"R$ (80%)", 40383u, 801u, 0u, 9624u, 68128u,
         0xb4763e3029602294ull},
        {"R$ (100%)", 39547u, 800u, 0u, 10303u, 68128u,
         0xc0679f4acccf5785ull},
        {"RBP", 107614u, 680u, 0u, 3871u, 24025u,
         0xf1abd4044ef6f472ull},
        {"R$BP (20%)", 56307u, 666u, 0u, 9626u, 92153u,
         0xcb4dc446f385148full},
        {"R$BP (40%)", 51369u, 672u, 0u, 11486u, 92153u,
         0xfbef1671e9717f58ull},
        {"R$BP (80%)", 37745u, 688u, 0u, 13440u, 92153u,
         0x3e24a64e5823477eull},
        {"R$BP (100%)", 36805u, 684u, 0u, 14122u, 92153u,
         0xb5783206aaee5f13ull},
    };

    const auto prog = workload::buildSynthetic(
        workload::standardWorkloadParams("twolf"));
    core::SampledConfig cfg;
    cfg.totalInsts = 400'000;
    cfg.regimen = {10, 2000};
    cfg.machine = core::MachineConfig::scaledDefault();

    auto policies = core::makeTable2Policies();
    ASSERT_EQ(policies.size(), std::size(golden));
    for (std::size_t i = 0; i < policies.size(); ++i) {
        const auto r = core::runSampled(prog, *policies[i], cfg);
        const GoldenRow &g = golden[i];
        ASSERT_EQ(policies[i]->name(), g.name);
        EXPECT_EQ(r.hotCycles, g.hotCycles) << g.name;
        EXPECT_EQ(r.branchMispredicts, g.branchMispredicts) << g.name;
        EXPECT_EQ(r.warmWork.functionalUpdates, g.functionalUpdates)
            << g.name;
        EXPECT_EQ(r.warmWork.reconstructionUpdates,
                  g.reconstructionUpdates)
            << g.name;
        EXPECT_EQ(r.warmWork.loggedRecords, g.loggedRecords) << g.name;
        std::uint64_t ipc_hash = 0xcbf29ce484222325ull;
        for (const double v : r.clusterIpc)
            ipc_hash = fnv1a(&v, sizeof(v), ipc_hash);
        EXPECT_EQ(ipc_hash, g.ipcHash) << g.name;
    }
}

} // namespace
