/**
 * @file
 * Workload tests: ProgramBuilder label/fixup/data machinery and the nine
 * synthetic SPEC2000-like generators — validity (programs run without
 * falling off the code), determinism, and first-order characteristics
 * (memory/branch/FP mix, call activity, working-set axes).
 */

#include <gtest/gtest.h>

#include <map>
#include <set>

#include "func/funcsim.hh"
#include "util/error.hh"
#include "workload/program_builder.hh"
#include "workload/synthetic.hh"

namespace rsr::workload
{
namespace
{

using isa::BranchKind;
using isa::Opcode;

TEST(ProgramBuilder, ForwardBranchFixup)
{
    ProgramBuilder b;
    Label target = b.newLabel();
    b.branch(Opcode::Beq, 0, 0, target); // always taken
    b.addi(1, 0, 99);                    // skipped
    b.bind(target);
    b.addi(2, 0, 7);
    b.halt();
    static func::Program prog = b.build("t");
    func::FuncSim fs(prog);
    fs.run(100);
    EXPECT_EQ(fs.reg(1), 0u);
    EXPECT_EQ(fs.reg(2), 7u);
}

TEST(ProgramBuilder, BackwardBranch)
{
    ProgramBuilder b;
    b.addi(1, 0, 3);
    Label loop = b.here();
    b.addi(2, 2, 1);
    b.addi(1, 1, -1);
    b.branch(Opcode::Bne, 1, 0, loop);
    b.halt();
    static func::Program prog = b.build("t");
    func::FuncSim fs(prog);
    fs.run(100);
    EXPECT_EQ(fs.reg(2), 3u);
}

TEST(ProgramBuilder, JumpFixup)
{
    ProgramBuilder b;
    Label over = b.newLabel();
    b.jump(over);
    b.addi(1, 0, 1);
    b.bind(over);
    b.halt();
    static func::Program prog = b.build("t");
    func::FuncSim fs(prog);
    fs.run(100);
    EXPECT_EQ(fs.reg(1), 0u);
}

TEST(ProgramBuilder, EntryLabel)
{
    ProgramBuilder b;
    b.addi(1, 0, 1); // skipped: entry points past it
    Label entry = b.here();
    b.addi(2, 0, 2);
    b.halt();
    static func::Program prog = b.build("t", entry);
    func::FuncSim fs(prog);
    fs.run(100);
    EXPECT_EQ(fs.reg(1), 0u);
    EXPECT_EQ(fs.reg(2), 2u);
}

TEST(ProgramBuilder, DataAllocationAlignedAndDisjoint)
{
    ProgramBuilder b;
    const auto a = b.allocData(100, 64);
    const auto c = b.allocData(10, 64);
    EXPECT_EQ(a % 64, 0u);
    EXPECT_EQ(c % 64, 0u);
    EXPECT_GE(c, a + 100);
}

TEST(ProgramBuilder, PokeDataVisibleToProgram)
{
    ProgramBuilder b;
    const auto slot = b.allocData(8);
    b.pokeData(slot, 0xabcdef, 8);
    b.loadImm64(1, slot);
    b.load(Opcode::Ld, 2, 1, 0);
    b.halt();
    static func::Program prog = b.build("t");
    func::FuncSim fs(prog);
    fs.run(100);
    EXPECT_EQ(fs.reg(2), 0xabcdefu);
}

TEST(ProgramBuilder, AddressOfBoundLabel)
{
    ProgramBuilder b;
    b.nop();
    Label l = b.here();
    EXPECT_EQ(b.addressOf(l), 0x10000u + 4);
}

// ---------------------------------------------------------------------------
// Synthetic generators.
// ---------------------------------------------------------------------------

/** Dynamic profile of a program's first @p n instructions. */
struct DynProfile
{
    std::uint64_t insts = 0;
    std::uint64_t memOps = 0;
    std::uint64_t loads = 0;
    std::uint64_t stores = 0;
    std::uint64_t condBranches = 0;
    std::uint64_t condTaken = 0;
    std::uint64_t calls = 0;
    std::uint64_t returns = 0;
    std::uint64_t indirect = 0;
    std::uint64_t fpOps = 0;
    std::set<std::uint64_t> dataLines;
    std::set<std::uint64_t> codeLines;
};

DynProfile
profile(const func::Program &prog, std::uint64_t n)
{
    DynProfile p;
    func::FuncSim fs(prog);
    func::DynInst d;
    for (std::uint64_t i = 0; i < n; ++i) {
        if (!fs.step(&d))
            break;
        ++p.insts;
        p.codeLines.insert(d.pc >> 6);
        if (d.inst.isMem()) {
            ++p.memOps;
            d.inst.isStore() ? ++p.stores : ++p.loads;
            p.dataLines.insert(d.effAddr >> 6);
        }
        if (d.inst.isFp())
            ++p.fpOps;
        switch (d.inst.branchKind()) {
          case BranchKind::Conditional:
            ++p.condBranches;
            p.condTaken += d.taken;
            break;
          case BranchKind::Call:
            ++p.calls;
            p.indirect += d.inst.op == Opcode::Jalr;
            break;
          case BranchKind::Return:
            ++p.returns;
            break;
          default:
            break;
        }
    }
    return p;
}

TEST(Synthetic, NineStandardProfiles)
{
    const auto all = standardWorkloadParams();
    ASSERT_EQ(all.size(), 9u);
    std::set<std::string> names;
    for (const auto &p : all)
        names.insert(p.name);
    for (const char *n : {"ammp", "art", "gcc", "mcf", "parser", "perl",
                          "twolf", "vortex", "vpr"})
        EXPECT_TRUE(names.count(n)) << n;
}

TEST(Synthetic, UnknownNameThrowsUserError)
{
    try {
        standardWorkloadParams("nonesuch");
        FAIL() << "standardWorkloadParams did not throw";
    } catch (const UserError &e) {
        EXPECT_NE(std::string(e.what()).find("unknown standard workload"),
                  std::string::npos);
    }
}

class StandardWorkload : public ::testing::TestWithParam<const char *>
{};

TEST_P(StandardWorkload, RunsFarWithoutHalting)
{
    const auto prog =
        buildSynthetic(standardWorkloadParams(GetParam()));
    func::FuncSim fs(prog);
    EXPECT_EQ(fs.run(300000), 300000u) << "program halted early";
}

TEST_P(StandardWorkload, DeterministicBuildAndRun)
{
    const auto p1 = buildSynthetic(standardWorkloadParams(GetParam()));
    const auto p2 = buildSynthetic(standardWorkloadParams(GetParam()));
    ASSERT_EQ(p1.code, p2.code);
    func::FuncSim a(p1), b(p2);
    a.run(50000);
    b.run(50000);
    EXPECT_EQ(a.pc(), b.pc());
    EXPECT_EQ(a.state().regs, b.state().regs);
}

TEST_P(StandardWorkload, ReasonableInstructionMix)
{
    const auto prog =
        buildSynthetic(standardWorkloadParams(GetParam()));
    const auto p = profile(prog, 200000);
    ASSERT_EQ(p.insts, 200000u);
    const double mem = double(p.memOps) / p.insts;
    const double br = double(p.condBranches) / p.insts;
    EXPECT_GT(mem, 0.05) << "too few memory ops";
    EXPECT_LT(mem, 0.6) << "too many memory ops";
    EXPECT_GT(br, 0.01) << "too few conditional branches";
    EXPECT_LT(br, 0.35) << "too many conditional branches";
    EXPECT_GT(p.stores, 0u);
    EXPECT_GT(p.calls, 0u);
    EXPECT_EQ(p.calls >= p.returns, true);
}

TEST_P(StandardWorkload, BranchBiasRoughlyAsConfigured)
{
    const auto params = standardWorkloadParams(GetParam());
    const auto prog = buildSynthetic(params);
    const auto p = profile(prog, 200000);
    const double taken = double(p.condTaken) / p.condBranches;
    // Loop-closing and dispatch branches push the overall ratio around;
    // just require a sane band and correlation with the bias knob.
    EXPECT_GT(taken, 0.35);
    EXPECT_LT(taken, 0.99);
}

INSTANTIATE_TEST_SUITE_P(All, StandardWorkload,
                         ::testing::Values("ammp", "art", "gcc", "mcf",
                                           "parser", "perl", "twolf",
                                           "vortex", "vpr"));

TEST(Synthetic, FpProfilesUseFp)
{
    const auto ammp = profile(
        buildSynthetic(standardWorkloadParams("ammp")), 100000);
    const auto gcc = profile(
        buildSynthetic(standardWorkloadParams("gcc")), 100000);
    EXPECT_GT(ammp.fpOps * 10, ammp.insts) << "ammp should be FP-heavy";
    EXPECT_EQ(gcc.fpOps, 0u) << "gcc is an integer workload";
}

TEST(Synthetic, McfChasesPointers)
{
    // mcf's footprint should dwarf twolf's (pointer chase over 2 MB).
    const auto mcf =
        profile(buildSynthetic(standardWorkloadParams("mcf")), 150000);
    const auto twolf =
        profile(buildSynthetic(standardWorkloadParams("twolf")), 150000);
    EXPECT_GT(mcf.dataLines.size(), 4 * twolf.dataLines.size());
}

TEST(Synthetic, CodeFootprintsDiffer)
{
    const auto gcc =
        profile(buildSynthetic(standardWorkloadParams("gcc")), 150000);
    const auto art =
        profile(buildSynthetic(standardWorkloadParams("art")), 150000);
    EXPECT_GT(gcc.codeLines.size(), 3 * art.codeLines.size());
}

TEST(Synthetic, RecursionExercisesReturnStack)
{
    const auto parser =
        profile(buildSynthetic(standardWorkloadParams("parser")), 150000);
    EXPECT_GT(parser.returns, 100u);
}

TEST(Synthetic, IndirectDispatchWorkloadsUseJalr)
{
    const auto perl =
        profile(buildSynthetic(standardWorkloadParams("perl")), 150000);
    const auto art =
        profile(buildSynthetic(standardWorkloadParams("art")), 150000);
    EXPECT_GT(perl.indirect, 0u);
    EXPECT_EQ(art.indirect, 0u); // compare-chain dispatch
}

TEST(Synthetic, CustomParamsRespected)
{
    WorkloadParams p;
    p.name = "custom";
    p.seed = 7;
    p.streamBytes = 64 * 1024;
    p.fpFrac = 0.0;
    p.numFuncs = 4;
    p.blocksPerFunc = 2;
    p.innerIters = 4;
    const auto prof = profile(buildSynthetic(p), 50000);
    EXPECT_EQ(prof.fpOps, 0u);
    EXPECT_EQ(prof.insts, 50000u);
}

TEST(Synthetic, SeedChangesProgram)
{
    WorkloadParams a = standardWorkloadParams("gcc");
    WorkloadParams b = a;
    b.seed = a.seed + 1;
    EXPECT_NE(buildSynthetic(a).code, buildSynthetic(b).code);
}

} // namespace
} // namespace rsr::workload
