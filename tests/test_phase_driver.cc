/**
 * @file
 * Tests for the phase driver's deferred/parallel mode and the harness
 * thread pool: the headline property is that `runSampledParallel` is
 * bit-identical for any worker count, across the paper's whole Table-2
 * policy matrix.
 */

#include <gtest/gtest.h>

#include <atomic>

#include "core/phase_driver.hh"
#include "core/warmup.hh"
#include "harness/parallel_run.hh"
#include "harness/thread_pool.hh"
#include "util/error.hh"
#include "workload/synthetic.hh"

namespace rsr
{
namespace
{

TEST(ThreadPool, RunsEveryTask)
{
    harness::ThreadPool pool(4);
    std::atomic<int> sum{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&sum] { ++sum; });
    pool.wait();
    EXPECT_EQ(sum, 100);
}

TEST(ThreadPool, WaitRethrowsFirstTaskError)
{
    harness::ThreadPool pool(2);
    pool.submit([] { rsr_throw_internal("task failed"); });
    EXPECT_THROW(pool.wait(), InternalError);
    // The pool stays usable after the error is consumed.
    std::atomic<int> sum{0};
    pool.submit([&sum] { ++sum; });
    pool.wait();
    EXPECT_EQ(sum, 1);
}

TEST(ThreadPool, ZeroThreadsClampsToOne)
{
    harness::ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);
    std::atomic<int> sum{0};
    pool.submit([&sum] { ++sum; });
    pool.wait();
    EXPECT_EQ(sum, 1);
}

class ParallelReplay : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        prog = new func::Program(workload::buildSynthetic(
            workload::standardWorkloadParams("gcc")));
        cfg = new core::SampledConfig();
        cfg->totalInsts = 150'000;
        cfg->regimen = {8, 1500};
        cfg->machine = core::MachineConfig::scaledDefault();
    }

    static void
    TearDownTestSuite()
    {
        delete prog;
        delete cfg;
    }

    static func::Program *prog;
    static core::SampledConfig *cfg;
};

func::Program *ParallelReplay::prog = nullptr;
core::SampledConfig *ParallelReplay::cfg = nullptr;

/** The full Table-2 matrix by CLI name. */
const char *const table2Names[] = {
    "none",     "fp20",     "fp40",      "fp80", "scache", "sbp",
    "smarts",   "rcache20", "rcache40",  "rcache80", "rcache100",
    "rbp",      "rsr20",    "rsr40",     "rsr80", "rsr100"};

TEST_F(ParallelReplay, BitIdenticalAcrossJobCountsForAllPolicies)
{
    for (const char *name : table2Names) {
        const auto p1 = core::makePolicyByName(name);
        const auto serial =
            harness::runSampledParallel(*prog, *p1, *cfg, 1);
        const auto p4 = core::makePolicyByName(name);
        const auto parallel =
            harness::runSampledParallel(*prog, *p4, *cfg, 4);

        ASSERT_EQ(serial.clusterIpc.size(), parallel.clusterIpc.size())
            << name;
        for (std::size_t i = 0; i < serial.clusterIpc.size(); ++i)
            ASSERT_EQ(serial.clusterIpc[i], parallel.clusterIpc[i])
                << name << " cluster " << i;
        ASSERT_EQ(serial.estimate.mean, parallel.estimate.mean) << name;
        ASSERT_EQ(serial.estimate.ciLow, parallel.estimate.ciLow)
            << name;
        ASSERT_EQ(serial.estimate.ciHigh, parallel.estimate.ciHigh)
            << name;
        ASSERT_EQ(serial.hotCycles, parallel.hotCycles) << name;
        ASSERT_EQ(serial.branchMispredicts, parallel.branchMispredicts)
            << name;
        ASSERT_EQ(serial.warmWork.totalUpdates(),
                  parallel.warmWork.totalUpdates())
            << name;
    }
}

TEST_F(ParallelReplay, PhaseCountersAreConsistent)
{
    auto policy = core::makePolicyByName("rsr40");
    const auto r = harness::runSampledParallel(*prog, *policy, *cfg, 4);

    EXPECT_EQ(r.phases.skipInsts, r.skippedInsts);
    EXPECT_EQ(r.phases.measureInsts, r.hotInsts);
    EXPECT_EQ(r.hotInsts, 8u * 1500u);
    EXPECT_GT(r.phases.peakSnapshotBytes, 0u);
    EXPECT_GT(r.phases.skipSeconds, 0.0);
    EXPECT_GT(r.phases.measureSeconds, 0.0);
    EXPECT_GT(r.phases.captureSeconds, 0.0);
}

TEST_F(ParallelReplay, InlineDriverCountersMatchLegacyResult)
{
    // The inline path must keep the legacy accounting intact and fill
    // the new per-phase counters consistently.
    auto policy = core::makePolicyByName("smarts");
    const auto r = core::runSampled(*prog, *policy, *cfg);
    EXPECT_EQ(r.phases.skipInsts, r.skippedInsts);
    EXPECT_EQ(r.phases.measureInsts, r.hotInsts);
    EXPECT_EQ(r.phases.peakSnapshotBytes, 0u); // no hooks, no snapshots
}

TEST_F(ParallelReplay, OnDemandReconstructionWorkIsJobIndependent)
{
    auto p1 = core::makePolicyByName("rbp");
    const auto serial = harness::runSampledParallel(*prog, *p1, *cfg, 1);
    auto p4 = core::makePolicyByName("rbp");
    const auto parallel =
        harness::runSampledParallel(*prog, *p4, *cfg, 4);

    EXPECT_GT(serial.warmWork.reconstructionUpdates, 0u);
    EXPECT_EQ(serial.warmWork.reconstructionUpdates,
              parallel.warmWork.reconstructionUpdates);
}

TEST_F(ParallelReplay, PolicySweepMatchesIndividualRuns)
{
    const std::vector<std::string> names{"none", "smarts", "rsr20"};
    const auto sweep =
        harness::runPolicySweep(*prog, names, *cfg, 3);
    ASSERT_EQ(sweep.size(), names.size());
    for (std::size_t i = 0; i < names.size(); ++i) {
        auto policy = core::makePolicyByName(names[i]);
        const auto solo =
            harness::runSampledParallel(*prog, *policy, *cfg, 1);
        EXPECT_EQ(sweep[i].cliName, names[i]);
        EXPECT_EQ(sweep[i].result.estimate.mean, solo.estimate.mean)
            << names[i];
        EXPECT_EQ(sweep[i].result.clusterIpc, solo.clusterIpc)
            << names[i];
    }
}

TEST_F(ParallelReplay, SweepRejectsUnknownPolicyUpFront)
{
    const std::vector<std::string> names{"none", "nonsense"};
    EXPECT_THROW(harness::runPolicySweep(*prog, names, *cfg, 2),
                 UserError);
}

} // namespace
} // namespace rsr
