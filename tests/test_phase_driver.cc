/**
 * @file
 * Tests for the phase driver's deferred/parallel mode and the harness
 * thread pool: the headline property is that `runSampledParallel` is
 * bit-identical for any worker count, across the paper's whole Table-2
 * policy matrix.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <mutex>
#include <set>

#include "core/phase_driver.hh"
#include "core/warmup.hh"
#include "harness/parallel_run.hh"
#include "harness/thread_pool.hh"
#include "util/error.hh"
#include "workload/synthetic.hh"

namespace rsr
{
namespace
{

TEST(ThreadPool, RunsEveryTask)
{
    harness::ThreadPool pool(4);
    std::atomic<int> sum{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&sum] { ++sum; });
    pool.wait();
    EXPECT_EQ(sum, 100);
}

TEST(ThreadPool, WaitRethrowsFirstTaskError)
{
    harness::ThreadPool pool(2);
    pool.submit([] { rsr_throw_internal("task failed"); });
    EXPECT_THROW(pool.wait(), InternalError);
    // The pool stays usable after the error is consumed.
    std::atomic<int> sum{0};
    pool.submit([&sum] { ++sum; });
    pool.wait();
    EXPECT_EQ(sum, 1);
}

TEST(ThreadPool, ZeroThreadsClampsToOne)
{
    harness::ThreadPool pool(0);
    EXPECT_EQ(pool.size(), 1u);
    std::atomic<int> sum{0};
    pool.submit([&sum] { ++sum; });
    pool.wait();
    EXPECT_EQ(sum, 1);
}

class ParallelReplay : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        prog = new func::Program(workload::buildSynthetic(
            workload::standardWorkloadParams("gcc")));
        cfg = new core::SampledConfig();
        cfg->totalInsts = 150'000;
        cfg->regimen = {8, 1500};
        cfg->machine = core::MachineConfig::scaledDefault();
    }

    static void
    TearDownTestSuite()
    {
        delete prog;
        delete cfg;
    }

    static func::Program *prog;
    static core::SampledConfig *cfg;
};

func::Program *ParallelReplay::prog = nullptr;
core::SampledConfig *ParallelReplay::cfg = nullptr;

/** The full Table-2 matrix by CLI name. */
const char *const table2Names[] = {
    "none",     "fp20",     "fp40",      "fp80", "scache", "sbp",
    "smarts",   "rcache20", "rcache40",  "rcache80", "rcache100",
    "rbp",      "rsr20",    "rsr40",     "rsr80", "rsr100"};

TEST_F(ParallelReplay, BitIdenticalAcrossJobCountsForAllPolicies)
{
    for (const char *name : table2Names) {
        const auto p1 = core::makePolicyByName(name);
        const auto serial =
            harness::runSampledParallel(*prog, *p1, *cfg, 1);
        const auto p4 = core::makePolicyByName(name);
        const auto parallel =
            harness::runSampledParallel(*prog, *p4, *cfg, 4);

        ASSERT_EQ(serial.clusterIpc.size(), parallel.clusterIpc.size())
            << name;
        for (std::size_t i = 0; i < serial.clusterIpc.size(); ++i)
            ASSERT_EQ(serial.clusterIpc[i], parallel.clusterIpc[i])
                << name << " cluster " << i;
        ASSERT_EQ(serial.estimate.mean, parallel.estimate.mean) << name;
        ASSERT_EQ(serial.estimate.ciLow, parallel.estimate.ciLow)
            << name;
        ASSERT_EQ(serial.estimate.ciHigh, parallel.estimate.ciHigh)
            << name;
        ASSERT_EQ(serial.hotCycles, parallel.hotCycles) << name;
        ASSERT_EQ(serial.branchMispredicts, parallel.branchMispredicts)
            << name;
        ASSERT_EQ(serial.warmWork.totalUpdates(),
                  parallel.warmWork.totalUpdates())
            << name;
    }
}

TEST_F(ParallelReplay, PhaseCountersAreConsistent)
{
    auto policy = core::makePolicyByName("rsr40");
    const auto r = harness::runSampledParallel(*prog, *policy, *cfg, 4);

    EXPECT_EQ(r.phases.skipInsts, r.skippedInsts);
    EXPECT_EQ(r.phases.measureInsts, r.hotInsts);
    EXPECT_EQ(r.hotInsts, 8u * 1500u);
    EXPECT_GT(r.phases.peakSnapshotBytes, 0u);
    EXPECT_GT(r.phases.skipSeconds, 0.0);
    EXPECT_GT(r.phases.measureSeconds, 0.0);
    EXPECT_GT(r.phases.captureSeconds, 0.0);
}

TEST_F(ParallelReplay, InlineDriverCountersMatchLegacyResult)
{
    // The inline path must keep the legacy accounting intact and fill
    // the new per-phase counters consistently.
    auto policy = core::makePolicyByName("smarts");
    const auto r = core::runSampled(*prog, *policy, *cfg);
    EXPECT_EQ(r.phases.skipInsts, r.skippedInsts);
    EXPECT_EQ(r.phases.measureInsts, r.hotInsts);
    EXPECT_EQ(r.phases.peakSnapshotBytes, 0u); // no hooks, no snapshots
}

TEST_F(ParallelReplay, OnDemandReconstructionWorkIsJobIndependent)
{
    auto p1 = core::makePolicyByName("rbp");
    const auto serial = harness::runSampledParallel(*prog, *p1, *cfg, 1);
    auto p4 = core::makePolicyByName("rbp");
    const auto parallel =
        harness::runSampledParallel(*prog, *p4, *cfg, 4);

    EXPECT_GT(serial.warmWork.reconstructionUpdates, 0u);
    EXPECT_EQ(serial.warmWork.reconstructionUpdates,
              parallel.warmWork.reconstructionUpdates);
}

TEST_F(ParallelReplay, PolicySweepMatchesIndividualRuns)
{
    const std::vector<std::string> names{"none", "smarts", "rsr20"};
    const auto sweep =
        harness::runPolicySweep(*prog, names, *cfg, 3);
    ASSERT_EQ(sweep.size(), names.size());
    for (std::size_t i = 0; i < names.size(); ++i) {
        auto policy = core::makePolicyByName(names[i]);
        const auto solo =
            harness::runSampledParallel(*prog, *policy, *cfg, 1);
        EXPECT_EQ(sweep[i].cliName, names[i]);
        EXPECT_EQ(sweep[i].result.estimate.mean, solo.estimate.mean)
            << names[i];
        EXPECT_EQ(sweep[i].result.clusterIpc, solo.clusterIpc)
            << names[i];
    }
}

TEST_F(ParallelReplay, SweepRejectsUnknownPolicyUpFront)
{
    const std::vector<std::string> names{"none", "nonsense"};
    EXPECT_THROW(harness::runPolicySweep(*prog, names, *cfg, 2),
                 UserError);
}

// ---------------------------------------------------------------------
// Work-stealing pool mechanics.
// ---------------------------------------------------------------------

TEST(WorkStealing, WeightedSubmitRunsEveryTask)
{
    harness::ThreadPool pool(3);
    std::atomic<std::uint64_t> sum{0};
    // Wildly skewed weights: placement picks the least-loaded lane, but
    // stealing must drain them all regardless.
    for (std::uint64_t w : {1000u, 1u, 1u, 500u, 1u, 1u, 1u, 250u})
        pool.submit([&sum, w] { sum += w; }, w);
    pool.wait();
    EXPECT_EQ(sum, 1755u);
}

TEST(WorkStealing, WorkerIndexIsStableAndBounded)
{
    // Off-pool threads report -1; pool workers report their own slot in
    // [0, size), consistently across many tasks.
    EXPECT_EQ(harness::ThreadPool::workerIndex(), -1);
    harness::ThreadPool pool(4);
    std::mutex mu;
    std::set<int> seen;
    std::atomic<bool> bad{false};
    for (int i = 0; i < 200; ++i)
        pool.submit([&] {
            const int idx = harness::ThreadPool::workerIndex();
            if (idx < 0 || idx >= 4)
                bad = true;
            std::lock_guard<std::mutex> lk(mu);
            seen.insert(idx);
        });
    pool.wait();
    EXPECT_FALSE(bad);
    EXPECT_GE(seen.size(), 1u);
    EXPECT_EQ(harness::ThreadPool::workerIndex(), -1);
}

TEST(WorkStealing, PoolIsReusableAcrossWaves)
{
    harness::ThreadPool pool(2, 42);
    std::atomic<int> sum{0};
    for (int wave = 0; wave < 5; ++wave) {
        for (int i = 0; i < 50; ++i)
            pool.submit([&sum] { ++sum; });
        pool.wait();
    }
    EXPECT_EQ(sum, 250);
}

TEST(WorkStealing, ArenaReplayMatchesFreshMachine)
{
    // Replaying through a reused arena machine must be bit-identical to
    // a fresh machine per cluster: restore fully overwrites the state.
    auto prog = func::Program(workload::buildSynthetic(
        workload::standardWorkloadParams("gcc")));
    core::SampledConfig cfg;
    cfg.totalInsts = 60'000;
    cfg.regimen = {4, 1000};
    cfg.machine = core::MachineConfig::scaledDefault();

    auto p1 = core::makePolicyByName("rsr40");
    const auto a = harness::runSampledParallel(prog, *p1, cfg, 1);
    auto p2 = core::makePolicyByName("rsr40");
    const auto b = harness::runSampledParallel(prog, *p2, cfg, 3);
    // jobs=3 replays each worker's clusters through one reused arena;
    // jobs=1 uses the producer arena for all of them.
    EXPECT_EQ(a.clusterIpc, b.clusterIpc);
    EXPECT_EQ(a.estimate.mean, b.estimate.mean);
    EXPECT_EQ(a.hotCycles, b.hotCycles);
}

/**
 * The satellite stress test: the full Table-2 policy matrix swept at
 * jobs ∈ {1, 2, 7, 16} under randomized steal order must emit a
 * byte-identical CSV. The CSV serializes every per-policy estimate and
 * per-cluster IPC at full precision, so any cross-thread reordering of
 * a single FP accumulation flips a byte.
 */
TEST_F(ParallelReplay, StressByteIdenticalCsvAcrossJobsAndStealOrder)
{
    const std::vector<std::string> names(std::begin(table2Names),
                                         std::end(table2Names));
    const auto csvOf = [&](const std::vector<harness::PolicySweepEntry>
                               &sweep) {
        std::string csv = "policy,mean,ci_low,ci_high,cluster_ipc\n";
        for (const auto &e : sweep) {
            char buf[128];
            std::snprintf(buf, sizeof(buf), "%s,%.17g,%.17g,%.17g",
                          e.cliName.c_str(), e.result.estimate.mean,
                          e.result.estimate.ciLow,
                          e.result.estimate.ciHigh);
            csv += buf;
            for (const double ipc : e.result.clusterIpc) {
                std::snprintf(buf, sizeof(buf), ",%.17g", ipc);
                csv += buf;
            }
            csv += '\n';
        }
        return csv;
    };

    const std::string ref =
        csvOf(harness::runPolicySweep(*prog, names, *cfg, 1));
    ASSERT_NE(ref.find("rsr40"), std::string::npos);

    // Each (jobs, seed) cell randomizes victim selection differently;
    // every cell must reproduce the serial CSV byte for byte.
    const unsigned job_counts[] = {2, 7, 16};
    const std::uint64_t seeds[] = {1, 0xdecafbadULL};
    for (const unsigned jobs : job_counts)
        for (const std::uint64_t seed : seeds) {
            const std::string csv = csvOf(
                harness::runPolicySweep(*prog, names, *cfg, jobs, seed));
            ASSERT_EQ(ref, csv)
                << "CSV diverged at jobs=" << jobs << " seed=" << seed;
        }
}

} // namespace
} // namespace rsr
