/**
 * @file
 * Golden-value regression tests: a small set of deterministic end-to-end
 * quantities pinned to their current values. Everything in the simulator
 * is seeded, so these values are stable across runs and hosts; they exist
 * to catch *unintended* behavioural drift. If a deliberate model change
 * shifts them, re-baseline the constants in the same commit and say so.
 */

#include <gtest/gtest.h>

#include <map>

#include "core/sampled_sim.hh"
#include "core/warmup.hh"
#include "workload/synthetic.hh"

namespace rsr
{
namespace
{

TEST(Regression, WorkloadProgramSizesPinned)
{
    // Static instruction counts of the generated programs.
    const std::map<std::string, std::size_t> expect{
        {"ammp", 2614},  {"art", 1167},    {"gcc", 29896},
        {"mcf", 1428},   {"parser", 9132}, {"perl", 11839},
        {"twolf", 6058}, {"vortex", 14975},{"vpr", 5283},
    };
    for (const auto &p : workload::standardWorkloadParams()) {
        const auto prog = workload::buildSynthetic(p);
        const auto it = expect.find(p.name);
        ASSERT_NE(it, expect.end());
        EXPECT_EQ(prog.code.size(), it->second) << p.name;
    }
}

TEST(Regression, TrueCyclesPinnedTwolf)
{
    const auto prog = workload::buildSynthetic(
        workload::standardWorkloadParams("twolf"));
    const auto full = core::runFull(prog, 100'000,
                                    core::MachineConfig::scaledDefault());
    EXPECT_EQ(full.timing.insts, 100'000u);
    EXPECT_EQ(full.timing.cycles, 256975u);
}

TEST(Regression, SampledEstimatePinnedTwolf)
{
    const auto prog = workload::buildSynthetic(
        workload::standardWorkloadParams("twolf"));
    core::SampledConfig cfg;
    cfg.totalInsts = 400'000;
    cfg.regimen = {10, 2000};
    cfg.machine = core::MachineConfig::scaledDefault();
    auto rsr = core::ReverseReconstructionWarmup::full(0.2);
    const auto r = core::runSampled(prog, *rsr, cfg);
    EXPECT_EQ(r.hotCycles, 56307u);
    EXPECT_EQ(r.warmWork.loggedRecords, 92153u);
}

} // namespace
} // namespace rsr
