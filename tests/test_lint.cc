/**
 * @file
 * rsrlint self-tests: every seeded-violation fixture is caught by its
 * rule, every clean twin passes, the lexer never matches inside
 * comments or literals, and — the project invariant — the real tree
 * under src/ stays clean against the committed (empty) baseline.
 *
 * RSRLINT_FIXTURES and RSR_REPO_ROOT are injected by tests/CMakeLists.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "index.hh"
#include "lint.hh"

namespace rsrlint
{
namespace
{

const SourceFile *
noSibling(const std::string &)
{
    return nullptr;
}

/**
 * Scan one fixture as if it lived under src/ — or, for serve-zone
 * rules (stem "serve_*"), under src/serve/. Both phases run: the
 * per-file rule catalog and the project rules over a one-file model.
 * A `<name>.abi` sidecar, when present, plays the committed snapshot
 * ABI file so snap-version-drift fixtures stay self-contained.
 */
std::vector<Finding>
scanFixture(const std::string &name)
{
    const std::string fs_path =
        std::string(RSRLINT_FIXTURES) + "/" + name + ".cc";
    const std::string zone_dir =
        name.rfind("serve_", 0) == 0 ? "src/serve/lintcheck/"
                                     : "src/lintcheck/";
    const SourceFile file =
        lexFile(fs_path, zone_dir + name + ".cc");
    auto findings = runRules(file, noSibling);

    std::map<std::string, SourceFile> files;
    files.emplace(file.path, file);
    const ProjectModel model = buildProjectModel(files);
    AbiTable sidecar;
    const AbiTable *abi = nullptr;
    const std::string abi_path =
        std::string(RSRLINT_FIXTURES) + "/" + name + ".abi";
    if (std::filesystem::is_regular_file(abi_path)) {
        sidecar = loadAbiFile(abi_path, "tools/lint/snapshot_abi.txt");
        abi = &sidecar;
    }
    const auto project = runProjectRules(model, files, abi);
    findings.insert(findings.end(), project.begin(), project.end());
    return findings;
}

std::set<std::string>
rulesIn(const std::vector<Finding> &findings)
{
    std::set<std::string> rules;
    for (const Finding &f : findings)
        rules.insert(f.rule);
    return rules;
}

class RsrLintFixtures
    : public ::testing::TestWithParam<const char *>
{};

TEST_P(RsrLintFixtures, BadTwinIsDetectedByItsRule)
{
    const std::string rule = GetParam();
    std::string stem = rule;
    for (char &c : stem)
        if (c == '-')
            c = '_';
    const auto findings = scanFixture(stem + "_bad");
    EXPECT_TRUE(rulesIn(findings).count(rule))
        << rule << " fixture produced no " << rule << " finding";
    for (const Finding &f : findings)
        EXPECT_EQ(f.rule, rule)
            << "unexpected cross-rule finding at line " << f.line
            << ": " << f.message;
}

TEST_P(RsrLintFixtures, CleanTwinPasses)
{
    const std::string rule = GetParam();
    std::string stem = rule;
    for (char &c : stem)
        if (c == '-')
            c = '_';
    const auto findings = scanFixture(stem + "_ok");
    EXPECT_TRUE(findings.empty())
        << findings.size() << " finding(s) in the clean twin; first: "
        << (findings.empty() ? ""
                             : findings[0].rule + " at line " +
                                   std::to_string(findings[0].line));
}

INSTANTIATE_TEST_SUITE_P(
    AllRules, RsrLintFixtures,
    ::testing::Values("det-random", "det-wallclock",
                      "det-unordered-iter", "err-exit", "err-assert",
                      "conc-global-state", "conc-unused-mutex",
                      "conc-shared-hot-write", "hot-endl", "hot-throw",
                      "bad-suppression", "serve-blocking-io",
                      "snap-missing-member", "snap-asymmetry",
                      "snap-version-drift", "lock-order"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        std::string name = info.param;
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

TEST(RsrLint, CatalogMatchesFixtureCoverage)
{
    // Every rule in the catalog has a fixture pair on disk.
    for (const RuleInfo &r : ruleCatalog()) {
        std::string stem = r.id;
        for (char &c : stem)
            if (c == '-')
                c = '_';
        for (const char *suffix : {"_bad.cc", "_ok.cc"}) {
            const std::string p = std::string(RSRLINT_FIXTURES) + "/" +
                                  stem + suffix;
            EXPECT_TRUE(std::filesystem::is_regular_file(p))
                << "missing fixture " << p;
        }
        EXPECT_TRUE(knownRule(r.id));
    }
}

TEST(RsrLint, LexerBlanksLiteralsAndComments)
{
    const SourceFile f = lexString(
        "const int x = 1'000'000; // exit(1) in a comment\n"
        "const char *s = \"abort(); std::endl\";\n"
        "/* assert(false) in a block comment */\n"
        "const auto r = R\"(rand() inside a raw string)\";\n",
        "src/lintcheck/lexer_probe.cc");
    for (const Finding &found : runRules(f, noSibling))
        ADD_FAILURE() << found.rule << " fired inside a literal or "
                      << "comment at line " << found.line;
    // Digit separators must not open a character literal: the second
    // line's code would otherwise be swallowed.
    EXPECT_NE(f.lines[1].code.find("const char *s"),
              std::string::npos);
}

TEST(RsrLint, SuppressionsSilencePreciseRules)
{
    const std::string bad =
        "#include <unordered_map>\n"
        "namespace rsr {\n"
        "void emit(const std::unordered_map<int, int> &m) {\n"
        "    for (const auto &[k, v] : m) { (void)k; (void)v; }\n"
        "}\n"
        "} // namespace rsr\n";
    const SourceFile plain =
        lexString(bad, "src/lintcheck/suppress_probe.cc");
    EXPECT_EQ(runRules(plain, noSibling).size(), 1u);

    // Same-line suppression.
    std::string allowed = bad;
    allowed.replace(allowed.find("{ (void)k;"), 1,
                    "{ // rsrlint: allow(det-unordered-iter)\n");
    const SourceFile same =
        lexString(allowed, "src/lintcheck/suppress_probe.cc");
    EXPECT_TRUE(runRules(same, noSibling).empty());

    // File-wide suppression.
    const SourceFile filewide = lexString(
        "// rsrlint: allow-file(det-unordered-iter)\n" + bad,
        "src/lintcheck/suppress_probe.cc");
    EXPECT_TRUE(runRules(filewide, noSibling).empty());

    // Suppressing a different rule must not help.
    const SourceFile wrong = lexString(
        "// rsrlint: allow-file(hot-endl)\n" + bad,
        "src/lintcheck/suppress_probe.cc");
    EXPECT_EQ(runRules(wrong, noSibling).size(), 1u);
}

TEST(RsrLint, ZonesExemptToolsAndBench)
{
    const std::string text = "#include <cstdlib>\n"
                             "int main() { exit(1); }\n";
    EXPECT_EQ(runRules(lexString(text, "src/core/probe.cc"),
                       noSibling)
                  .size(),
              1u);
    EXPECT_TRUE(runRules(lexString(text, "tools/probe.cc"), noSibling)
                    .empty());
    EXPECT_TRUE(
        runRules(lexString(text, "src/harness/probe.cc"), noSibling)
            .empty());
}

TEST(RsrLint, ServeBlockingIoScopedToServeZone)
{
    const std::string text =
        "namespace rsr {\n"
        "long f(int fd, char *b) { return ::recv(fd, b, 1, 0); }\n"
        "} // namespace rsr\n";
    EXPECT_EQ(runRules(lexString(text, "src/serve/probe.cc"), noSibling)
                  .size(),
              1u);
    EXPECT_TRUE(
        runRules(lexString(text, "src/core/probe.cc"), noSibling)
            .empty());
    EXPECT_TRUE(runRules(lexString(text, "tools/probe.cc"), noSibling)
                    .empty());
}

TEST(RsrLint, MutexPairedWithLockingSourceIsClean)
{
    const SourceFile hh = lexString("#include <mutex>\n"
                                    "namespace rsr {\n"
                                    "class Q { std::mutex mu; };\n"
                                    "} // namespace rsr\n",
                                    "src/core/q.hh");
    const SourceFile cc_locking =
        lexString("#include \"q.hh\"\n"
                  "namespace rsr {\n"
                  "void f(Q &q) { std::lock_guard<std::mutex> lk(q.mu); }\n"
                  "} // namespace rsr\n",
                  "src/core/q.cc");
    auto sibling =
        [&cc_locking](const std::string &rel) -> const SourceFile * {
        return rel == "src/core/q.cc" ? &cc_locking : nullptr;
    };
    EXPECT_TRUE(runRules(hh, sibling).empty());
    EXPECT_EQ(runRules(hh, [](const std::string &) {
                  return static_cast<const SourceFile *>(nullptr);
              }).size(),
              1u);
}

TEST(RsrLint, BaselineRoundTripSilencesGrandfatheredFindings)
{
    namespace fs = std::filesystem;
    const fs::path root =
        fs::path(::testing::TempDir()) / "rsrlint_baseline_probe";
    fs::create_directories(root / "src");
    {
        std::ofstream out(root / "src" / "legacy.cc");
        out << "#include <cstdlib>\n"
               "namespace rsr {\n"
               "int f() { return rand(); }\n"
               "} // namespace rsr\n";
    }
    LintOptions opts;
    opts.root = root.string();
    opts.paths = {"src"};
    opts.writeBaselinePath = "baseline.txt";
    const LintResult first = runLint(opts);
    ASSERT_EQ(first.findings.size(), 1u);
    EXPECT_EQ(first.findings[0].rule, "det-random");

    LintOptions with_baseline;
    with_baseline.root = root.string();
    with_baseline.paths = {"src"};
    with_baseline.baselinePath = "baseline.txt";
    const LintResult second = runLint(with_baseline);
    EXPECT_TRUE(second.findings.empty());
    EXPECT_EQ(second.baselined, 1u);
    fs::remove_all(root);
}

TEST(RsrLint, FixRewritesEndlMechanically)
{
    namespace fs = std::filesystem;
    const fs::path root =
        fs::path(::testing::TempDir()) / "rsrlint_fix_probe";
    fs::create_directories(root / "src");
    const fs::path target = root / "src" / "noisy.cc";
    {
        std::ofstream out(target);
        out << "#include <iostream>\n"
               "namespace rsr {\n"
               "void f() { std::cout << 1 << std::endl; }\n"
               "} // namespace rsr\n";
    }
    LintOptions opts;
    opts.root = root.string();
    opts.paths = {"src"};
    opts.fix = true;
    const LintResult fixed = runLint(opts);
    EXPECT_EQ(fixed.fixed, 1u);
    EXPECT_TRUE(fixed.findings.empty());

    opts.fix = false;
    EXPECT_TRUE(runLint(opts).findings.empty());
    fs::remove_all(root);
}

TEST(RsrLint, RepoTreeStaysCleanAgainstCommittedBaseline)
{
    LintOptions opts;
    opts.root = RSR_REPO_ROOT;
    opts.paths = {"src", "tools", "bench"};
    opts.baselinePath = "tools/lint/rsrlint_baseline.txt";
    const LintResult result = runLint(opts);
    EXPECT_GT(result.filesScanned, 100u)
        << "scan did not cover the tree — wrong root?";
    for (const Finding &f : result.findings)
        ADD_FAILURE() << f.path << ":" << f.line << ": [" << f.rule
                      << "] " << f.message;
    // The committed baseline must stay empty: new violations are fixed
    // or suppressed with justification, never grandfathered.
    EXPECT_EQ(result.baselined, 0u)
        << "tools/lint/rsrlint_baseline.txt must stay empty";
}

std::string
readRepoFile(const std::string &rel)
{
    std::ifstream in(std::filesystem::path(RSR_REPO_ROOT) / rel,
                     std::ios::binary);
    EXPECT_TRUE(in.good()) << rel;
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

TEST(RsrLintModel, IndexesRealTreeSnapshotables)
{
    LintOptions opts;
    opts.root = RSR_REPO_ROOT;
    const ProjectModel model = buildModelForTree(opts);
    std::vector<std::string> names;
    for (const SnapType &t : model.types)
        names.push_back(t.name);
    EXPECT_EQ(names,
              (std::vector<std::string>{"Cache", "GsharePredictor",
                                        "Machine", "MemoryHierarchy"}));
    for (const SnapType &t : model.types) {
        EXPECT_TRUE(t.snapshot.found) << t.name;
        EXPECT_TRUE(t.restore.found) << t.name;
        EXPECT_TRUE(t.versionKnown)
            << t.name << ": " << t.versionExpr;
    }
    for (const SnapType &t : model.types)
        if (t.name == "Cache")
            EXPECT_EQ(t.serializedMembers(),
                      (std::vector<std::string>{"numSets_", "assoc_",
                                                "tags_", "flags_",
                                                "order_",
                                                "reconCount_"}));
    // The ThreadPool lock discipline is documented and holds.
    ASSERT_EQ(model.lockSpecs.size(), 1u);
    EXPECT_TRUE(model.lockSpecs[0].parsed);
    EXPECT_EQ(model.lockSpecs[0].before, "mu");
    EXPECT_EQ(model.lockSpecs[0].after, "lane.mu");
    EXPECT_TRUE(model.lockInversions.empty());
}

TEST(RsrLintModel, CommittedSnapshotAbiIsFresh)
{
    LintOptions opts;
    opts.root = RSR_REPO_ROOT;
    EXPECT_EQ(readRepoFile("tools/lint/snapshot_abi.txt"),
              renderSnapshotAbi(buildModelForTree(opts)))
        << "run `rsrlint --update-snapshot-abi` and commit the result";
}

/**
 * The acceptance drill for the semantic rules: delete a member
 * reference from the real Cache::snapshot() and the pair rules must
 * catch it — from one body as snap-asymmetry, from both bodies as
 * snap-missing-member.
 */
TEST(RsrLintModel, DeletedMemberRefInRealSnapshotIsCaught)
{
    const std::string hh_text = readRepoFile("src/cache/cache.hh");
    std::string cc_text = readRepoFile("src/cache/cache.cc");
    const std::string snap_ref = "out.putU64(tags_[s * assoc_ + w]);";
    const std::string rest_ref =
        "tags_[s * assoc_ + w] = in.getU64();";
    ASSERT_NE(cc_text.find(snap_ref), std::string::npos);
    ASSERT_NE(cc_text.find(rest_ref), std::string::npos);

    auto scanPair = [&hh_text](const std::string &cc) {
        std::map<std::string, SourceFile> files;
        files.emplace("src/cache/cache.hh",
                      lexString(hh_text, "src/cache/cache.hh"));
        files.emplace("src/cache/cache.cc",
                      lexString(cc, "src/cache/cache.cc"));
        return runProjectRules(buildProjectModel(files), files,
                               nullptr);
    };
    EXPECT_TRUE(scanPair(cc_text).empty());

    std::string one_sided = cc_text;
    one_sided.replace(one_sided.find(snap_ref), snap_ref.size(),
                      "out.putU64(0);");
    const auto asym = scanPair(one_sided);
    ASSERT_EQ(asym.size(), 1u);
    EXPECT_EQ(asym[0].rule, "snap-asymmetry");
    EXPECT_NE(asym[0].message.find("tags_"), std::string::npos);

    std::string both_sides = one_sided;
    both_sides.replace(both_sides.find(rest_ref), rest_ref.size(),
                       "(void)in.getU64();");
    const auto missing = scanPair(both_sides);
    ASSERT_EQ(missing.size(), 1u);
    EXPECT_EQ(missing[0].rule, "snap-missing-member");
    EXPECT_EQ(missing[0].path, "src/cache/cache.hh");
    EXPECT_NE(missing[0].message.find("tags_"), std::string::npos);
}

TEST(RsrLintModel, LockOrderSpecIsScopedToItsTuPair)
{
    const std::string inverted = "#include <mutex>\n"
                                 "namespace rsr {\n"
                                 "struct Lane { std::mutex mu; };\n"
                                 "void f(std::mutex &mu, Lane &lane)\n"
                                 "{\n"
                                 "    std::lock_guard<std::mutex> a(lane.mu);\n"
                                 "    std::lock_guard<std::mutex> b(mu);\n"
                                 "}\n"
                                 "} // namespace rsr\n";
    const std::string spec =
        "// rsrlint: lock-order(mu < lane.mu)\n";

    std::map<std::string, SourceFile> files;
    files.emplace("src/core/pool.cc",
                  lexString(spec + inverted, "src/core/pool.cc"));
    files.emplace("src/core/other.cc",
                  lexString(inverted, "src/core/other.cc"));
    const ProjectModel model = buildProjectModel(files);
    ASSERT_EQ(model.lockSpecs.size(), 1u);
    // The same inverted nesting exists in both TUs, but the spec only
    // governs its own pair: exactly one inversion, in pool.cc.
    ASSERT_EQ(model.lockInversions.size(), 1u);
    EXPECT_EQ(model.lockInversions[0].path, "src/core/pool.cc");
    EXPECT_EQ(model.lockInversions[0].acquiring, "mu");
    EXPECT_EQ(model.lockInversions[0].held, "lane.mu");
}

TEST(RsrLintModel, SuggestEmitsInsertableMarkerText)
{
    namespace fs = std::filesystem;
    const fs::path root =
        fs::path(::testing::TempDir()) / "rsrlint_suggest_probe";
    fs::create_directories(root / "src");
    fs::copy_file(std::string(RSRLINT_FIXTURES) +
                      "/snap_missing_member_bad.cc",
                  root / "src" / "widget.cc",
                  fs::copy_options::overwrite_existing);
    LintOptions opts;
    opts.root = root.string();
    opts.paths = {"src"};
    opts.suggest = true;
    const LintResult result = runLint(opts);
    ASSERT_EQ(result.findings.size(), 1u);
    EXPECT_EQ(result.findings[0].rule, "snap-missing-member");
    ASSERT_EQ(result.suggestions.size(), 1u);
    EXPECT_NE(result.suggestions[0].find("rsrlint: snap-excluded("),
              std::string::npos);
    EXPECT_NE(result.suggestions[0].find("lost_"), std::string::npos);
    fs::remove_all(root);
}

TEST(RsrLintModel, UpdateSnapshotAbiGatesOnVersionBump)
{
    namespace fs = std::filesystem;
    const fs::path root =
        fs::path(::testing::TempDir()) / "rsrlint_abi_probe";
    fs::create_directories(root / "src");
    auto gadget = [&root](bool with_z, unsigned version) {
        std::ofstream out(root / "src" / "gadget.cc");
        out << "#include <cstdint>\n"
               "namespace rsr {\n"
               "class Serializer {\n"
               "  public:\n"
               "    void begin(std::uint32_t t, std::uint32_t v);\n"
               "    void end();\n"
               "    void putU64(std::uint64_t v);\n"
               "};\n"
               "class Deserializer {\n"
               "  public:\n"
               "    std::uint32_t begin(std::uint32_t t);\n"
               "    void end();\n"
               "    std::uint64_t getU64();\n"
               "};\n"
               "class Snapshotable {\n"
               "  public:\n"
               "    virtual ~Snapshotable() = default;\n"
               "    virtual void snapshot(Serializer &out) const = 0;\n"
               "    virtual void restore(Deserializer &in) = 0;\n"
               "};\n"
               "constexpr std::uint32_t gadgetTag = 7;\n"
               "constexpr std::uint32_t gadgetVersion = "
            << version
            << ";\n"
               "class Gadget : public Snapshotable {\n"
               "  public:\n"
               "    void snapshot(Serializer &out) const override {\n"
               "        out.begin(gadgetTag, gadgetVersion);\n"
               "        out.putU64(x_);\n"
            << (with_z ? "        out.putU64(z_);\n" : "")
            << "        out.end();\n"
               "    }\n"
               "    void restore(Deserializer &in) override {\n"
               "        in.begin(gadgetTag);\n"
               "        x_ = in.getU64();\n"
            << (with_z ? "        z_ = in.getU64();\n" : "")
            << "        in.end();\n"
               "    }\n"
               "  private:\n"
               "    std::uint64_t x_ = 0;\n"
            << (with_z ? "    std::uint64_t z_ = 0;\n" : "")
            << "};\n"
               "} // namespace rsr\n";
    };
    LintOptions opts;
    opts.root = root.string();
    opts.paths = {"src"};
    opts.abiPath = "snapshot_abi.txt";
    std::string report;

    gadget(false, 1);
    EXPECT_EQ(updateSnapshotAbi(opts, /*checkOnly=*/true, report), 1)
        << report; // missing file
    EXPECT_EQ(updateSnapshotAbi(opts, false, report), 0) << report;
    EXPECT_EQ(updateSnapshotAbi(opts, true, report), 0) << report;

    // Serialized members change at the same version: the check goes
    // stale and the update refuses until the version constant is
    // bumped in the code.
    gadget(true, 1);
    EXPECT_EQ(updateSnapshotAbi(opts, true, report), 1) << report;
    EXPECT_EQ(updateSnapshotAbi(opts, false, report), 1) << report;
    EXPECT_NE(report.find("refusing"), std::string::npos);

    gadget(true, 2);
    EXPECT_EQ(updateSnapshotAbi(opts, false, report), 0) << report;
    EXPECT_EQ(updateSnapshotAbi(opts, true, report), 0) << report;
    fs::remove_all(root);
}

} // namespace
} // namespace rsrlint
