/**
 * @file
 * rsrlint self-tests: every seeded-violation fixture is caught by its
 * rule, every clean twin passes, the lexer never matches inside
 * comments or literals, and — the project invariant — the real tree
 * under src/ stays clean against the committed (empty) baseline.
 *
 * RSRLINT_FIXTURES and RSR_REPO_ROOT are injected by tests/CMakeLists.
 */

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "lint.hh"

namespace rsrlint
{
namespace
{

const SourceFile *
noSibling(const std::string &)
{
    return nullptr;
}

/**
 * Scan one fixture as if it lived under src/ — or, for serve-zone
 * rules (stem "serve_*"), under src/serve/.
 */
std::vector<Finding>
scanFixture(const std::string &name)
{
    const std::string fs_path =
        std::string(RSRLINT_FIXTURES) + "/" + name + ".cc";
    const std::string zone_dir =
        name.rfind("serve_", 0) == 0 ? "src/serve/lintcheck/"
                                     : "src/lintcheck/";
    const SourceFile file =
        lexFile(fs_path, zone_dir + name + ".cc");
    return runRules(file, noSibling);
}

std::set<std::string>
rulesIn(const std::vector<Finding> &findings)
{
    std::set<std::string> rules;
    for (const Finding &f : findings)
        rules.insert(f.rule);
    return rules;
}

class RsrLintFixtures
    : public ::testing::TestWithParam<const char *>
{};

TEST_P(RsrLintFixtures, BadTwinIsDetectedByItsRule)
{
    const std::string rule = GetParam();
    std::string stem = rule;
    for (char &c : stem)
        if (c == '-')
            c = '_';
    const auto findings = scanFixture(stem + "_bad");
    EXPECT_TRUE(rulesIn(findings).count(rule))
        << rule << " fixture produced no " << rule << " finding";
    for (const Finding &f : findings)
        EXPECT_EQ(f.rule, rule)
            << "unexpected cross-rule finding at line " << f.line
            << ": " << f.message;
}

TEST_P(RsrLintFixtures, CleanTwinPasses)
{
    const std::string rule = GetParam();
    std::string stem = rule;
    for (char &c : stem)
        if (c == '-')
            c = '_';
    const auto findings = scanFixture(stem + "_ok");
    EXPECT_TRUE(findings.empty())
        << findings.size() << " finding(s) in the clean twin; first: "
        << (findings.empty() ? ""
                             : findings[0].rule + " at line " +
                                   std::to_string(findings[0].line));
}

INSTANTIATE_TEST_SUITE_P(
    AllRules, RsrLintFixtures,
    ::testing::Values("det-random", "det-wallclock",
                      "det-unordered-iter", "err-exit", "err-assert",
                      "conc-global-state", "conc-unused-mutex",
                      "conc-shared-hot-write", "hot-endl", "hot-throw",
                      "bad-suppression", "serve-blocking-io"),
    [](const ::testing::TestParamInfo<const char *> &info) {
        std::string name = info.param;
        for (char &c : name)
            if (c == '-')
                c = '_';
        return name;
    });

TEST(RsrLint, CatalogMatchesFixtureCoverage)
{
    // Every rule in the catalog has a fixture pair on disk.
    for (const RuleInfo &r : ruleCatalog()) {
        std::string stem = r.id;
        for (char &c : stem)
            if (c == '-')
                c = '_';
        for (const char *suffix : {"_bad.cc", "_ok.cc"}) {
            const std::string p = std::string(RSRLINT_FIXTURES) + "/" +
                                  stem + suffix;
            EXPECT_TRUE(std::filesystem::is_regular_file(p))
                << "missing fixture " << p;
        }
        EXPECT_TRUE(knownRule(r.id));
    }
}

TEST(RsrLint, LexerBlanksLiteralsAndComments)
{
    const SourceFile f = lexString(
        "const int x = 1'000'000; // exit(1) in a comment\n"
        "const char *s = \"abort(); std::endl\";\n"
        "/* assert(false) in a block comment */\n"
        "const auto r = R\"(rand() inside a raw string)\";\n",
        "src/lintcheck/lexer_probe.cc");
    for (const Finding &found : runRules(f, noSibling))
        ADD_FAILURE() << found.rule << " fired inside a literal or "
                      << "comment at line " << found.line;
    // Digit separators must not open a character literal: the second
    // line's code would otherwise be swallowed.
    EXPECT_NE(f.lines[1].code.find("const char *s"),
              std::string::npos);
}

TEST(RsrLint, SuppressionsSilencePreciseRules)
{
    const std::string bad =
        "#include <unordered_map>\n"
        "namespace rsr {\n"
        "void emit(const std::unordered_map<int, int> &m) {\n"
        "    for (const auto &[k, v] : m) { (void)k; (void)v; }\n"
        "}\n"
        "} // namespace rsr\n";
    const SourceFile plain =
        lexString(bad, "src/lintcheck/suppress_probe.cc");
    EXPECT_EQ(runRules(plain, noSibling).size(), 1u);

    // Same-line suppression.
    std::string allowed = bad;
    allowed.replace(allowed.find("{ (void)k;"), 1,
                    "{ // rsrlint: allow(det-unordered-iter)\n");
    const SourceFile same =
        lexString(allowed, "src/lintcheck/suppress_probe.cc");
    EXPECT_TRUE(runRules(same, noSibling).empty());

    // File-wide suppression.
    const SourceFile filewide = lexString(
        "// rsrlint: allow-file(det-unordered-iter)\n" + bad,
        "src/lintcheck/suppress_probe.cc");
    EXPECT_TRUE(runRules(filewide, noSibling).empty());

    // Suppressing a different rule must not help.
    const SourceFile wrong = lexString(
        "// rsrlint: allow-file(hot-endl)\n" + bad,
        "src/lintcheck/suppress_probe.cc");
    EXPECT_EQ(runRules(wrong, noSibling).size(), 1u);
}

TEST(RsrLint, ZonesExemptToolsAndBench)
{
    const std::string text = "#include <cstdlib>\n"
                             "int main() { exit(1); }\n";
    EXPECT_EQ(runRules(lexString(text, "src/core/probe.cc"),
                       noSibling)
                  .size(),
              1u);
    EXPECT_TRUE(runRules(lexString(text, "tools/probe.cc"), noSibling)
                    .empty());
    EXPECT_TRUE(
        runRules(lexString(text, "src/harness/probe.cc"), noSibling)
            .empty());
}

TEST(RsrLint, ServeBlockingIoScopedToServeZone)
{
    const std::string text =
        "namespace rsr {\n"
        "long f(int fd, char *b) { return ::recv(fd, b, 1, 0); }\n"
        "} // namespace rsr\n";
    EXPECT_EQ(runRules(lexString(text, "src/serve/probe.cc"), noSibling)
                  .size(),
              1u);
    EXPECT_TRUE(
        runRules(lexString(text, "src/core/probe.cc"), noSibling)
            .empty());
    EXPECT_TRUE(runRules(lexString(text, "tools/probe.cc"), noSibling)
                    .empty());
}

TEST(RsrLint, MutexPairedWithLockingSourceIsClean)
{
    const SourceFile hh = lexString("#include <mutex>\n"
                                    "namespace rsr {\n"
                                    "class Q { std::mutex mu; };\n"
                                    "} // namespace rsr\n",
                                    "src/core/q.hh");
    const SourceFile cc_locking =
        lexString("#include \"q.hh\"\n"
                  "namespace rsr {\n"
                  "void f(Q &q) { std::lock_guard<std::mutex> lk(q.mu); }\n"
                  "} // namespace rsr\n",
                  "src/core/q.cc");
    auto sibling =
        [&cc_locking](const std::string &rel) -> const SourceFile * {
        return rel == "src/core/q.cc" ? &cc_locking : nullptr;
    };
    EXPECT_TRUE(runRules(hh, sibling).empty());
    EXPECT_EQ(runRules(hh, [](const std::string &) {
                  return static_cast<const SourceFile *>(nullptr);
              }).size(),
              1u);
}

TEST(RsrLint, BaselineRoundTripSilencesGrandfatheredFindings)
{
    namespace fs = std::filesystem;
    const fs::path root =
        fs::path(::testing::TempDir()) / "rsrlint_baseline_probe";
    fs::create_directories(root / "src");
    {
        std::ofstream out(root / "src" / "legacy.cc");
        out << "#include <cstdlib>\n"
               "namespace rsr {\n"
               "int f() { return rand(); }\n"
               "} // namespace rsr\n";
    }
    LintOptions opts;
    opts.root = root.string();
    opts.paths = {"src"};
    opts.writeBaselinePath = "baseline.txt";
    const LintResult first = runLint(opts);
    ASSERT_EQ(first.findings.size(), 1u);
    EXPECT_EQ(first.findings[0].rule, "det-random");

    LintOptions with_baseline;
    with_baseline.root = root.string();
    with_baseline.paths = {"src"};
    with_baseline.baselinePath = "baseline.txt";
    const LintResult second = runLint(with_baseline);
    EXPECT_TRUE(second.findings.empty());
    EXPECT_EQ(second.baselined, 1u);
    fs::remove_all(root);
}

TEST(RsrLint, FixRewritesEndlMechanically)
{
    namespace fs = std::filesystem;
    const fs::path root =
        fs::path(::testing::TempDir()) / "rsrlint_fix_probe";
    fs::create_directories(root / "src");
    const fs::path target = root / "src" / "noisy.cc";
    {
        std::ofstream out(target);
        out << "#include <iostream>\n"
               "namespace rsr {\n"
               "void f() { std::cout << 1 << std::endl; }\n"
               "} // namespace rsr\n";
    }
    LintOptions opts;
    opts.root = root.string();
    opts.paths = {"src"};
    opts.fix = true;
    const LintResult fixed = runLint(opts);
    EXPECT_EQ(fixed.fixed, 1u);
    EXPECT_TRUE(fixed.findings.empty());

    opts.fix = false;
    EXPECT_TRUE(runLint(opts).findings.empty());
    fs::remove_all(root);
}

TEST(RsrLint, RepoTreeStaysCleanAgainstCommittedBaseline)
{
    LintOptions opts;
    opts.root = RSR_REPO_ROOT;
    opts.paths = {"src", "tools", "bench"};
    opts.baselinePath = "tools/lint/rsrlint_baseline.txt";
    const LintResult result = runLint(opts);
    EXPECT_GT(result.filesScanned, 100u)
        << "scan did not cover the tree — wrong root?";
    for (const Finding &f : result.findings)
        ADD_FAILURE() << f.path << ":" << f.line << ": [" << f.rule
                      << "] " << f.message;
    // The committed baseline must stay empty: new violations are fixed
    // or suppressed with justification, never grandfathered.
    EXPECT_EQ(result.baselined, 0u)
        << "tools/lint/rsrlint_baseline.txt must stay empty";
}

} // namespace
} // namespace rsrlint
