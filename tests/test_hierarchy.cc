/**
 * @file
 * Bus and memory-hierarchy tests: arbitration/contention/transfer-delay
 * modelling, the paper's Section-4 configuration, timed access paths,
 * and warm (functional) access equivalence.
 */

#include <gtest/gtest.h>

#include "cache/bus.hh"
#include "cache/hierarchy.hh"

namespace rsr::cache
{
namespace
{

TEST(Bus, TransferCycles)
{
    Bus b({"b", 16, 2});
    EXPECT_EQ(b.transferCycles(16), 2u);
    EXPECT_EQ(b.transferCycles(64), 8u);
    EXPECT_EQ(b.transferCycles(8), 2u); // partial beat rounds up
}

TEST(Bus, PaperBusRates)
{
    // L1 bus: 16 B at 1 GHz against a 2 GHz core -> a 64 B line takes
    // 4 beats = 8 CPU cycles. L2 bus: 32 B at 2 GHz -> 2 CPU cycles.
    Bus l1({"l1", 16, 2}), l2({"l2", 32, 1});
    EXPECT_EQ(l1.transferCycles(64), 8u);
    EXPECT_EQ(l2.transferCycles(64), 2u);
}

TEST(Bus, UncontendedTransfer)
{
    Bus b({"b", 16, 2});
    EXPECT_EQ(b.occupy(100, 64), 108u);
    EXPECT_EQ(b.stats().waitCycles, 0u);
}

TEST(Bus, ContentionSerializes)
{
    Bus b({"b", 16, 2});
    EXPECT_EQ(b.occupy(100, 64), 108u);
    EXPECT_EQ(b.occupy(102, 64), 116u); // waits for the first transfer
    EXPECT_EQ(b.stats().waitCycles, 6u);
}

TEST(Bus, IdleGapNoWait)
{
    Bus b({"b", 16, 2});
    b.occupy(0, 64);
    EXPECT_EQ(b.occupy(50, 64), 58u);
    EXPECT_EQ(b.stats().waitCycles, 0u);
}

TEST(Bus, ResetClearsSchedule)
{
    Bus b({"b", 16, 2});
    b.occupy(0, 64);
    b.reset();
    EXPECT_EQ(b.occupy(0, 64), 8u);
}

TEST(Hierarchy, PaperDefaultGeometry)
{
    const auto p = HierarchyParams::paperDefault();
    EXPECT_EQ(p.dl1.sizeBytes, 32u * 1024);
    EXPECT_EQ(p.dl1.assoc, 4u);
    EXPECT_EQ(p.il1.sizeBytes, 64u * 1024);
    EXPECT_EQ(p.l2.sizeBytes, 1024u * 1024);
    EXPECT_EQ(p.l2.assoc, 8u);
    EXPECT_EQ(p.dl1.writePolicy, WritePolicy::WriteThroughNoAllocate);
    EXPECT_EQ(p.l2.writePolicy, WritePolicy::WriteBackAllocate);
    EXPECT_EQ(p.l1Bus.widthBytes, 16u);
    EXPECT_EQ(p.l2Bus.widthBytes, 32u);
}

TEST(Hierarchy, L1HitIsFast)
{
    MemoryHierarchy h(HierarchyParams::paperDefault());
    h.timedLoad(0, 0x1000); // warm the line (miss)
    const auto t = h.timedLoad(1000, 0x1008);
    EXPECT_EQ(t, 1000u + h.dl1().params().hitLatency);
}

TEST(Hierarchy, L1MissL2HitLatency)
{
    MemoryHierarchy h(HierarchyParams::paperDefault());
    // Put the line in L2 but a conflicting line in L1 so L1 misses.
    h.timedLoad(0, 0x1000);
    // Evict from L1 by filling its set (128 sets * 64B stride apart).
    const std::uint64_t set_stride = 128 * 64;
    for (int i = 1; i <= 4; ++i)
        h.timedLoad(0, 0x1000 + i * set_stride);
    ASSERT_FALSE(h.dl1().probe(0x1000));
    ASSERT_TRUE(h.l2().probe(0x1000));
    h.l1Bus().reset();
    h.l2Bus().reset();
    const auto t = h.timedLoad(10000, 0x1000);
    // L1 bus (8) + L2 hit (12) + L1 fill-to-use (2).
    EXPECT_EQ(t, 10000u + 8 + 12 + 2);
}

TEST(Hierarchy, FullMissIncludesMemoryLatency)
{
    MemoryHierarchy h(HierarchyParams::paperDefault());
    const auto t = h.timedLoad(0, 0x400000);
    // L1 bus (8) + L2 (12) + L2 bus (2) + memory (200) + fill (2).
    EXPECT_EQ(t, 8u + 12 + 2 + 200 + 2);
}

TEST(Hierarchy, FetchUsesIl1)
{
    MemoryHierarchy h(HierarchyParams::paperDefault());
    h.timedFetch(0, 0x2000);
    EXPECT_TRUE(h.il1().probe(0x2000));
    EXPECT_FALSE(h.dl1().probe(0x2000));
    const auto t = h.timedFetch(500, 0x2004);
    EXPECT_EQ(t, 500u + h.il1().params().hitLatency);
}

TEST(Hierarchy, StoreWritesThroughToL2)
{
    MemoryHierarchy h(HierarchyParams::paperDefault());
    h.timedStore(0, 0x3000);
    EXPECT_FALSE(h.dl1().probe(0x3000)); // WTNA: no L1 allocation
    EXPECT_TRUE(h.l2().probe(0x3000));   // write-allocate in L2
}

TEST(Hierarchy, WarmAccessMatchesTimedStateTransitions)
{
    MemoryHierarchy timed(HierarchyParams::paperDefault());
    MemoryHierarchy warm(HierarchyParams::paperDefault());
    // Apply an identical mixed stream through both paths.
    const std::uint64_t addrs[] = {0x1000, 0x8000, 0x1000, 0x40000,
                                   0x1040, 0x8000, 0x100000};
    const bool stores[] = {false, true, false, false, true, false, false};
    std::uint64_t t = 0;
    for (unsigned i = 0; i < std::size(addrs); ++i) {
        t = timed.timedLoad(t, 0); // unrelated traffic is fine
        if (stores[i])
            timed.timedStore(t, addrs[i]);
        else
            timed.timedLoad(t, addrs[i]);
        warm.warmAccess(0, false, false);
        warm.warmAccess(addrs[i], stores[i], false);
    }
    for (auto a : addrs) {
        EXPECT_EQ(timed.dl1().probe(a), warm.dl1().probe(a)) << a;
        EXPECT_EQ(timed.l2().probe(a), warm.l2().probe(a)) << a;
    }
}

TEST(Hierarchy, WarmUpdatesCounted)
{
    MemoryHierarchy h(HierarchyParams::paperDefault());
    h.warmAccess(0x1000, false, false); // L1 miss -> L1 + L2 updates
    EXPECT_EQ(h.warmUpdates(), 2u);
    h.warmAccess(0x1000, false, false); // L1 hit -> 1 update
    EXPECT_EQ(h.warmUpdates(), 3u);
    h.warmAccess(0x1000, true, false); // store: L1 + write-through L2
    EXPECT_EQ(h.warmUpdates(), 5u);
}

TEST(Hierarchy, ResetClearsEverything)
{
    MemoryHierarchy h(HierarchyParams::paperDefault());
    h.timedLoad(0, 0x1000);
    h.reset();
    EXPECT_FALSE(h.dl1().probe(0x1000));
    EXPECT_FALSE(h.l2().probe(0x1000));
    EXPECT_EQ(h.warmUpdates(), 0u);
}

TEST(Hierarchy, WritebackOccupiesL2BusAfterFill)
{
    auto p = HierarchyParams::paperDefault();
    p.l2.sizeBytes = 64 * 64 * 8; // tiny L2: 64 sets x 8 ways
    MemoryHierarchy h(p);
    // Dirty a line, then evict it with 8 conflicting fills.
    const std::uint64_t set_stride = 64 * 64;
    h.timedStore(0, 0x0);
    const auto before = h.l2Bus().stats().transfers;
    for (int i = 1; i <= 8; ++i)
        h.timedLoad(10000 * i, i * set_stride);
    const auto after = h.l2Bus().stats().transfers;
    EXPECT_EQ(h.l2().stats().writebacks, 1u);
    // 8 demand fills + 1 writeback.
    EXPECT_EQ(after - before, 9u);
}

} // namespace
} // namespace rsr::cache
