/**
 * @file
 * Core-module tests: sampling regimen and cluster schedules, cluster
 * statistics, the skip log, the cache reconstructor over a real
 * hierarchy, and the branch reconstructor (GHR, RAS, on-demand PHT/BTB).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/branch_reconstructor.hh"
#include "core/cache_reconstructor.hh"
#include "core/regimen.hh"
#include "core/skip_log.hh"
#include "core/statistics.hh"
#include "util/random.hh"

namespace rsr::core
{
namespace
{

using isa::BranchKind;

// ---------------------------------------------------------------------------
// Regimen / schedule.
// ---------------------------------------------------------------------------

TEST(Schedule, SortedNonOverlappingInRange)
{
    Rng rng(1);
    const SamplingRegimen reg{50, 1000};
    const auto sched = makeSchedule(reg, 1'000'000, rng);
    ASSERT_EQ(sched.size(), 50u);
    std::uint64_t prev_end = 0;
    for (const auto &c : sched) {
        EXPECT_GE(c.start, prev_end);
        EXPECT_EQ(c.size, 1000u);
        prev_end = c.start + c.size;
    }
    EXPECT_LE(prev_end, 1'000'000u);
}

TEST(Schedule, ExactFitPopulation)
{
    Rng rng(2);
    const SamplingRegimen reg{10, 100};
    const auto sched = makeSchedule(reg, 1000, rng);
    for (std::size_t i = 0; i < sched.size(); ++i)
        EXPECT_EQ(sched[i].start, i * 100);
}

TEST(Schedule, DeterministicInSeed)
{
    Rng a(7), b(7), c(8);
    const SamplingRegimen reg{20, 500};
    const auto s1 = makeSchedule(reg, 500'000, a);
    const auto s2 = makeSchedule(reg, 500'000, b);
    const auto s3 = makeSchedule(reg, 500'000, c);
    for (std::size_t i = 0; i < s1.size(); ++i)
        EXPECT_EQ(s1[i].start, s2[i].start);
    bool any_diff = false;
    for (std::size_t i = 0; i < s1.size(); ++i)
        any_diff |= s1[i].start != s3[i].start;
    EXPECT_TRUE(any_diff);
}

TEST(Schedule, StartsRoughlyUniform)
{
    Rng rng(3);
    const SamplingRegimen reg{1, 100};
    // Single cluster placed many times: mean start should be near the
    // middle of the population.
    double sum = 0;
    const int draws = 2000;
    for (int i = 0; i < draws; ++i)
        sum += static_cast<double>(makeSchedule(reg, 100'000, rng)[0].start);
    EXPECT_NEAR(sum / draws, 50'000, 3'000);
}

TEST(Schedule, RegimenSampledInsts)
{
    EXPECT_EQ((SamplingRegimen{40, 2000}).sampledInsts(), 80'000u);
}

// ---------------------------------------------------------------------------
// Statistics.
// ---------------------------------------------------------------------------

TEST(Statistics, HandComputedExample)
{
    const std::vector<double> ipcs{1.0, 2.0, 3.0, 4.0};
    const auto e = summarizeClusters(ipcs);
    EXPECT_DOUBLE_EQ(e.mean, 2.5);
    // Sample stddev of {1,2,3,4} = sqrt(5/3).
    EXPECT_NEAR(e.stddev, std::sqrt(5.0 / 3.0), 1e-12);
    EXPECT_NEAR(e.stdErr, e.stddev / 2.0, 1e-12);
    EXPECT_NEAR(e.ciLow, 2.5 - 1.96 * e.stdErr, 1e-12);
    EXPECT_NEAR(e.ciHigh, 2.5 + 1.96 * e.stdErr, 1e-12);
}

TEST(Statistics, CiContainment)
{
    const auto e = summarizeClusters({1.0, 1.1, 0.9, 1.0, 1.05});
    EXPECT_TRUE(e.passesCi(1.0));
    EXPECT_FALSE(e.passesCi(2.0));
}

TEST(Statistics, RelativeError)
{
    ClusterEstimate e;
    e.mean = 0.9;
    EXPECT_NEAR(e.relativeError(1.0), 0.1, 1e-12);
    e.mean = 1.1;
    EXPECT_NEAR(e.relativeError(1.0), 0.1, 1e-12);
}

TEST(Statistics, SingleClusterNoVariance)
{
    const auto e = summarizeClusters({1.5});
    EXPECT_DOUBLE_EQ(e.mean, 1.5);
    EXPECT_DOUBLE_EQ(e.stdErr, 0.0);
    EXPECT_TRUE(e.passesCi(1.5));
}

TEST(Statistics, EmptyIsZero)
{
    const auto e = summarizeClusters({});
    EXPECT_DOUBLE_EQ(e.mean, 0.0);
    EXPECT_EQ(e.numClusters, 0u);
}

// ---------------------------------------------------------------------------
// Skip log.
// ---------------------------------------------------------------------------

TEST(SkipLog, MemRecordPacksFields)
{
    const MemRecord r(0x12344, 0xdeadbec0, true, false);
    EXPECT_EQ(r.pc(), 0x12344u);
    EXPECT_EQ(r.addr, 0xdeadbec0u);
    EXPECT_TRUE(r.isInstr());
    EXPECT_FALSE(r.isStore());
    const MemRecord s(0x40000, 0x100, false, true);
    EXPECT_FALSE(s.isInstr());
    EXPECT_TRUE(s.isStore());
}

TEST(SkipLog, MemLogSoaMatchesRecordForm)
{
    MemLog log;
    log.append(0x12344, 0xdeadbec0, true, false);
    log.append(0x40000, 0x100, false, true);
    ASSERT_EQ(log.size(), 2u);
    EXPECT_EQ(log.pc(0), 0x12344u);
    EXPECT_EQ(log.addr(0), 0xdeadbec0u);
    EXPECT_TRUE(log.isInstr(0));
    EXPECT_FALSE(log.isStore(0));
    EXPECT_FALSE(log.isInstr(1));
    EXPECT_TRUE(log.isStore(1));
    // Round-trip through the AoS record form keeps the same packing.
    const MemRecord r = log.record(0);
    EXPECT_EQ(r.pc(), 0x12344u);
    EXPECT_EQ(r.addr, 0xdeadbec0u);
    EXPECT_EQ(log.bytes(), 2 * sizeof(MemRecord));
}

TEST(SkipLog, BytesAndClear)
{
    SkipLog log;
    log.mem.append(0, 0, false, false);
    log.branches.push_back({0x10, 0x20, BranchKind::Conditional, true});
    EXPECT_EQ(log.records(), 2u);
    EXPECT_GT(log.bytes(), 0u);
    log.clear();
    EXPECT_EQ(log.records(), 0u);
    EXPECT_EQ(log.bytes(), 0u);
}

// ---------------------------------------------------------------------------
// Cache reconstructor over the full hierarchy.
// ---------------------------------------------------------------------------

TEST(CacheReconstructor, FractionSelectsLogTail)
{
    cache::HierarchyParams hp = cache::HierarchyParams::paperDefault();
    cache::MemoryHierarchy h(hp);
    MemLog log;
    // 100 distinct lines; with fraction 0.2 only the last 20 apply.
    for (int i = 0; i < 100; ++i)
        log.append(0x1000, 0x100000 + i * 64, false, false);
    const auto res = reconstructCaches(h, log, 0.2);
    EXPECT_EQ(res.refsScanned, 20u);
    for (int i = 80; i < 100; ++i)
        EXPECT_TRUE(h.dl1().probe(0x100000 + i * 64));
    for (int i = 0; i < 80; ++i)
        EXPECT_FALSE(h.dl1().probe(0x100000 + i * 64));
}

TEST(CacheReconstructor, InstrRefsGoToIl1)
{
    cache::MemoryHierarchy h(cache::HierarchyParams::paperDefault());
    MemLog log;
    log.append(0x5000, 0x5000, true, false);
    log.append(0x5000, 0x200000, false, false);
    reconstructCaches(h, log, 1.0);
    EXPECT_TRUE(h.il1().probe(0x5000));
    EXPECT_FALSE(h.dl1().probe(0x5000));
    EXPECT_TRUE(h.dl1().probe(0x200000));
    EXPECT_TRUE(h.l2().probe(0x5000));
    EXPECT_TRUE(h.l2().probe(0x200000));
}

TEST(CacheReconstructor, StoresAllocateUnderWtna)
{
    cache::MemoryHierarchy h(cache::HierarchyParams::paperDefault());
    MemLog log;
    log.append(0x5000, 0x300000, false, true);
    reconstructCaches(h, log, 1.0);
    // Paper Sec. 3.1: WTNA caches allocate even on writes during
    // reconstruction.
    EXPECT_TRUE(h.dl1().probe(0x300000));
}

TEST(CacheReconstructor, CountsIgnoredRefs)
{
    cache::MemoryHierarchy h(cache::HierarchyParams::paperDefault());
    MemLog log;
    for (int i = 0; i < 10; ++i)
        log.append(0x5000, 0x400000, false, false); // same line
    const auto res = reconstructCaches(h, log, 1.0);
    EXPECT_EQ(res.refsScanned, 10u);
    EXPECT_EQ(res.refsIgnored, 9u);
}

TEST(CacheReconstructor, EmptyLogIsNoop)
{
    cache::MemoryHierarchy h(cache::HierarchyParams::paperDefault());
    h.warmAccess(0x1000, false, false);
    const auto res = reconstructCaches(h, MemLog{}, 1.0);
    EXPECT_EQ(res.refsScanned, 0u);
    EXPECT_TRUE(h.dl1().probe(0x1000)); // stale content untouched
}

// ---------------------------------------------------------------------------
// Branch reconstructor.
// ---------------------------------------------------------------------------

branch::PredictorParams
smallBp()
{
    branch::PredictorParams p;
    p.phtEntries = 1024;
    p.historyBits = 8;
    p.btbEntries = 64;
    p.rasEntries = 4;
    return p;
}

TEST(BranchReconstructor, GhrRebuiltExactly)
{
    branch::GsharePredictor truth(smallBp()), rsr(smallBp());
    SkipLog log;
    log.ghrAtStart = 0x5a;
    truth.setGhr(0x5a);
    Rng rng(9);
    for (int i = 0; i < 100; ++i) {
        const bool taken = rng.chance(0.6);
        const std::uint64_t pc = 0x1000 + 8 * (i % 13);
        truth.warmApply(pc, BranchKind::Conditional, taken, pc + 64);
        log.branches.push_back(
            {pc, pc + 64, BranchKind::Conditional, taken});
    }
    BranchReconstructor recon(rsr);
    recon.begin(log);
    EXPECT_EQ(rsr.ghr(), truth.ghr());
    recon.end();
}

TEST(BranchReconstructor, RasRebuiltExactly)
{
    // Random call/return sequences without underflow or overflow (the
    // hardware RAS wraps on overflow, silently losing entries the log
    // still knows about — see RasOverflowRestoresLogicalStack): the
    // reverse counter algorithm must reproduce the final RAS exactly.
    for (std::uint64_t seed = 1; seed <= 20; ++seed) {
        branch::GsharePredictor truth(smallBp()), rsr(smallBp());
        SkipLog log;
        Rng rng(seed);
        int depth = 0;
        std::uint64_t next_pc = 0x2000;
        for (int i = 0; i < 200; ++i) {
            const bool call =
                depth == 0 || (depth < 4 && rng.chance(0.55));
            const std::uint64_t pc = next_pc;
            next_pc += 4 * (1 + rng.below(8));
            if (call) {
                truth.warmApply(pc, BranchKind::Call, true, pc + 0x100);
                log.branches.push_back(
                    {pc, pc + 0x100, BranchKind::Call, true});
                ++depth;
            } else {
                truth.warmApply(pc, BranchKind::Return, true, pc - 0x80);
                log.branches.push_back(
                    {pc, pc - 0x80, BranchKind::Return, true});
                --depth;
            }
        }
        BranchReconstructor recon(rsr);
        recon.begin(log);
        EXPECT_EQ(rsr.rasContents(), truth.rasContents()) << seed;
        recon.end();
    }
}

TEST(BranchReconstructor, RasOverflowRestoresLogicalStack)
{
    // Five pushes overflow the 4-entry hardware RAS (the oldest entry is
    // overwritten); four pops then drain it. The reverse algorithm
    // restores the oldest push — it is still logically live in the log —
    // so reconstruction can be slightly *warmer* than the hardware here.
    branch::GsharePredictor bp(smallBp());
    SkipLog log;
    for (int i = 0; i < 5; ++i)
        log.branches.push_back({0x100ull + 16 * i, 0x1000,
                                BranchKind::Call, true});
    for (int i = 0; i < 4; ++i)
        log.branches.push_back({0x2000ull + 16 * i, 0x104,
                                BranchKind::Return, true});
    BranchReconstructor recon(bp);
    recon.begin(log);
    EXPECT_EQ(bp.rasContents(),
              std::vector<std::uint64_t>{0x100 + 4});
    recon.end();
}

TEST(BranchReconstructor, BtbOnDemandMatchesMostRecentTarget)
{
    branch::GsharePredictor bp(smallBp());
    SkipLog log;
    // Same indirect branch taken to two targets; the newer must win.
    log.branches.push_back(
        {0x3000, 0x5000, BranchKind::IndirectJump, true});
    log.branches.push_back(
        {0x3000, 0x6000, BranchKind::IndirectJump, true});
    BranchReconstructor recon(bp);
    recon.begin(log);
    const auto p = bp.predict(0x3000, BranchKind::IndirectJump);
    EXPECT_TRUE(p.targetValid);
    EXPECT_EQ(p.target, 0x6000u);
    recon.end();
}

TEST(BranchReconstructor, PhtExactWhenRunOfThreeExists)
{
    branch::GsharePredictor truth(smallBp()), rsr(smallBp());
    SkipLog log;
    log.ghrAtStart = 0;
    truth.setGhr(0);
    // Same static branch taken three times with untaken history bits
    // zeroed between (use non-conditional records to keep GHR still).
    const std::uint64_t pc = 0x4000;
    for (int i = 0; i < 3; ++i) {
        // Keep GHR constant by resetting truth's GHR after each update.
        truth.warmApply(pc, BranchKind::Conditional, true, pc + 32);
        truth.setGhr(0);
        log.branches.push_back({pc, pc + 32, BranchKind::Conditional, true});
    }
    // The log-based GHR evolves, so the reconstructor sees the same
    // branch under histories 0, 1, 11 — reconstruct the history-0 entry.
    BranchReconstructor recon(rsr);
    recon.begin(log);
    rsr.setGhr(0);
    recon.ensurePht(rsr.phtIndexWith(pc, 0));
    // Entry for (pc, ghr=0) saw exactly one outcome (the first logged),
    // newest outcome taken -> some taken-side value; direction must
    // match truth's.
    const auto idx = rsr.phtIndexWith(pc, 0);
    EXPECT_TRUE(branch::counter::taken(rsr.phtEntry(idx)));
    recon.end();
}

TEST(BranchReconstructor, ThreeConsecutiveSameHistoryPinsExactly)
{
    branch::GsharePredictor rsr(smallBp());
    SkipLog log;
    log.ghrAtStart = 0;
    const std::uint64_t pc = 0x4100;
    // Conditional not-taken outcomes keep GHR at 0 -> all three updates
    // hit the same entry; three in a row pins strongly-not-taken.
    for (int i = 0; i < 3; ++i)
        log.branches.push_back(
            {pc, pc + 4, BranchKind::Conditional, false});
    BranchReconstructor recon(rsr);
    recon.begin(log);
    recon.ensurePht(rsr.phtIndexWith(pc, 0));
    EXPECT_EQ(rsr.phtEntry(rsr.phtIndexWith(pc, 0)),
              branch::counter::stronglyNotTaken);
    EXPECT_EQ(recon.stats().phtReconstructed, 1u);
    recon.end();
}

TEST(BranchReconstructor, UnloggedEntryLeftStale)
{
    branch::GsharePredictor bp(smallBp());
    bp.setPhtEntry(5, branch::counter::stronglyTaken);
    SkipLog log;
    log.branches.push_back(
        {0x9000, 0x9100, BranchKind::Conditional, false});
    BranchReconstructor recon(bp);
    recon.begin(log);
    recon.ensurePht(5); // assume index 5 not touched by the log
    // Index of the logged branch under ghr 0:
    const auto logged_idx = bp.phtIndexWith(0x9000, 0);
    ASSERT_NE(logged_idx, 5u);
    EXPECT_EQ(bp.phtEntry(5), branch::counter::stronglyTaken);
    EXPECT_EQ(recon.stats().phtStale, 1u);
    recon.end();
}

TEST(BranchReconstructor, CursorSharedAcrossDemands)
{
    branch::GsharePredictor bp(smallBp());
    SkipLog log;
    // Two branches at distinct entries; demanding one reconstructs both
    // on the way (single backward pass).
    log.branches.push_back({0x100, 0x200, BranchKind::IndirectJump, true});
    log.branches.push_back({0x108, 0x300, BranchKind::IndirectJump, true});
    BranchReconstructor recon(bp);
    recon.begin(log);
    recon.ensureBtb(bp.btbIndex(0x100)); // scans whole log
    const auto scanned = recon.stats().recordsScanned;
    recon.ensureBtb(bp.btbIndex(0x108)); // already reconstructed
    EXPECT_EQ(recon.stats().recordsScanned, scanned);
    EXPECT_TRUE(bp.btbEntryValid(bp.btbIndex(0x108)));
    recon.end();
}

TEST(BranchReconstructor, PredictorHookTriggersReconstruction)
{
    branch::GsharePredictor bp(smallBp());
    SkipLog log;
    log.ghrAtStart = 0;
    for (int i = 0; i < 3; ++i)
        log.branches.push_back(
            {0x700, 0x704, BranchKind::Conditional, false});
    BranchReconstructor recon(bp);
    recon.begin(log);
    bp.setGhr(0);
    // predict() must reconstruct through the client hook on its own.
    const auto p = bp.predict(0x700, BranchKind::Conditional);
    EXPECT_FALSE(p.taken); // pinned strongly-not-taken
    EXPECT_GT(recon.stats().demands, 0u);
    recon.end();
}

TEST(BranchReconstructor, EndDetaches)
{
    branch::GsharePredictor bp(smallBp());
    SkipLog log;
    BranchReconstructor recon(bp);
    recon.begin(log);
    recon.end();
    const auto before = recon.stats().demands;
    bp.predict(0x100, BranchKind::Conditional);
    EXPECT_EQ(recon.stats().demands, before);
}

} // namespace
} // namespace rsr::core
