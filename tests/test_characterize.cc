/**
 * @file
 * Characterization tests: the profile statistics on controlled programs,
 * and the cross-workload spread the substitution argument relies on.
 */

#include <gtest/gtest.h>

#include "workload/characterize.hh"
#include "workload/program_builder.hh"
#include "workload/synthetic.hh"

namespace rsr::workload
{
namespace
{

using isa::Opcode;

TEST(Characterize, ControlledMixCounts)
{
    // 10-iteration loop: ld, sd, fadd, addi, bne per iteration.
    ProgramBuilder b;
    const auto base = b.allocData(64);
    b.loadImm64(1, base);
    b.addi(2, 0, 10);
    Label loop = b.here();
    b.load(Opcode::Ld, 3, 1, 0);
    b.store(Opcode::Sd, 3, 1, 0);
    b.rtype(Opcode::Fadd, 4, 4, 5);
    b.addi(2, 2, -1);
    b.branch(Opcode::Bne, 2, 0, loop);
    b.halt();
    static const func::Program prog = b.build("mix");

    const auto p = characterize(prog, 100'000);
    // Setup (loadImm64 expands to several instructions) + 10 x 5-inst
    // loop body; halt is not counted.
    const double setup = static_cast<double>(prog.code.size()) - 6;
    const double total = setup + 50;
    EXPECT_EQ(p.insts, static_cast<std::uint64_t>(total));
    EXPECT_NEAR(p.loadFrac, 10.0 / total, 1e-9);
    EXPECT_NEAR(p.storeFrac, 10.0 / total, 1e-9);
    EXPECT_NEAR(p.fpFrac, 10.0 / total, 1e-9);
    EXPECT_NEAR(p.condBranchFrac, 10.0 / total, 1e-9);
    EXPECT_EQ(p.staticCondBranches, 1u);
    // 9 taken, 1 fall-through: bias |2*0.9-1| = 0.8.
    EXPECT_NEAR(p.condTakenFrac, 0.9, 1e-9);
    EXPECT_NEAR(p.branchBiasIndex, 0.8, 1e-9);
    EXPECT_EQ(p.dataLines, 1u);
}

TEST(Characterize, ReuseQuantilesOnPeriodicPattern)
{
    // Two lines touched alternately: every reuse time is exactly 2.
    ProgramBuilder b;
    const auto base = b.allocData(256);
    b.loadImm64(1, base);
    b.addi(2, 0, 100);
    Label loop = b.here();
    b.load(Opcode::Ld, 3, 1, 0);
    b.load(Opcode::Ld, 4, 1, 128);
    b.addi(2, 2, -1);
    b.branch(Opcode::Bne, 2, 0, loop);
    b.halt();
    static const func::Program prog = b.build("periodic");

    const auto p = characterize(prog, 100'000);
    EXPECT_EQ(p.reuseP50, 2u);
    EXPECT_EQ(p.reuseP99, 2u);
    EXPECT_EQ(p.dataLines, 2u);
}

TEST(Characterize, EmptyProgram)
{
    ProgramBuilder b;
    b.halt();
    static const func::Program prog = b.build("empty");
    const auto p = characterize(prog, 1000);
    EXPECT_EQ(p.insts, 0u);
}

TEST(Characterize, NineProfilesSpanTheAxes)
{
    double min_bias = 1, max_bias = 0;
    std::uint64_t min_data = ~0ull, max_data = 0;
    std::uint64_t min_code = ~0ull, max_code = 0;
    double max_fp = 0;
    for (const auto &params : standardWorkloadParams()) {
        const auto prog = buildSynthetic(params);
        const auto p = characterize(prog, 400'000);
        min_bias = std::min(min_bias, p.branchBiasIndex);
        max_bias = std::max(max_bias, p.branchBiasIndex);
        min_data = std::min(min_data, p.dataFootprintBytes());
        max_data = std::max(max_data, p.dataFootprintBytes());
        min_code = std::min(min_code, p.codeFootprintBytes());
        max_code = std::max(max_code, p.codeFootprintBytes());
        max_fp = std::max(max_fp, p.fpFrac);
    }
    EXPECT_LT(min_bias, 0.35) << "need a hard-to-predict workload";
    EXPECT_GT(max_bias, 0.8) << "need a predictable workload";
    EXPECT_GT(max_data, 8 * min_data) << "need footprint spread";
    EXPECT_GT(max_code, 4 * min_code) << "need code footprint spread";
    EXPECT_GT(max_fp, 0.2) << "need an FP-heavy workload";
}

} // namespace
} // namespace rsr::workload
