/**
 * @file
 * Additional coverage: SMARTS-style regimen sizing, the stats report,
 * workload pointer-chain structure, and warm-up boundary cases (empty
 * and tiny skip regions, fraction rounding).
 */

#include <gtest/gtest.h>

#include <set>

#include "core/sampled_sim.hh"
#include "core/stats_report.hh"
#include "core/warmup.hh"
#include "func/funcsim.hh"
#include "workload/synthetic.hh"

namespace rsr
{
namespace
{

// ---------------------------------------------------------------------------
// Regimen recommendation.
// ---------------------------------------------------------------------------

TEST(RecommendClusters, MatchesFormula)
{
    core::ClusterEstimate pilot;
    pilot.mean = 1.0;
    pilot.stddev = 0.2; // cv = 0.2
    pilot.numClusters = 30;
    // n = (1.96 * 0.2 / 0.02)^2 = 384.16 -> 385
    EXPECT_EQ(core::recommendClusters(pilot, 0.02), 385u);
}

TEST(RecommendClusters, TighterTargetNeedsMoreClusters)
{
    core::ClusterEstimate pilot;
    pilot.mean = 0.5;
    pilot.stddev = 0.1;
    pilot.numClusters = 10;
    EXPECT_GT(core::recommendClusters(pilot, 0.01),
              core::recommendClusters(pilot, 0.05));
}

TEST(RecommendClusters, ZeroVarianceNeedsOne)
{
    core::ClusterEstimate pilot;
    pilot.mean = 1.0;
    pilot.stddev = 0.0;
    pilot.numClusters = 5;
    EXPECT_EQ(core::recommendClusters(pilot, 0.01), 1u);
}

TEST(RecommendClusters, PilotDrivenSizingConverges)
{
    // Size a regimen from a pilot run, then check the full run's CI
    // half-width lands near the target.
    const auto prog = workload::buildSynthetic(
        workload::standardWorkloadParams("twolf"));
    core::SampledConfig pilot_cfg;
    pilot_cfg.totalInsts = 600'000;
    pilot_cfg.regimen = {15, 2000};
    pilot_cfg.machine = core::MachineConfig::scaledDefault();
    auto smarts = core::FunctionalWarmup::smarts();
    const auto pilot = core::runSampled(prog, *smarts, pilot_cfg);

    const double target = 0.05;
    const auto n = core::recommendClusters(pilot.estimate, target);
    core::SampledConfig full_cfg = pilot_cfg;
    full_cfg.regimen.numClusters = n;
    // Keep the sample within the population.
    ASSERT_LE(n * full_cfg.regimen.clusterSize, full_cfg.totalInsts);
    auto smarts2 = core::FunctionalWarmup::smarts();
    const auto r = core::runSampled(prog, *smarts2, full_cfg);
    const double half_width =
        (r.estimate.ciHigh - r.estimate.ciLow) / 2.0 / r.estimate.mean;
    EXPECT_LT(half_width, target * 1.8); // variance itself is estimated
}

// ---------------------------------------------------------------------------
// Stats report.
// ---------------------------------------------------------------------------

TEST(StatsReport, ContainsAllSections)
{
    const auto prog = workload::buildSynthetic(
        workload::standardWorkloadParams("twolf"));
    const auto mc = core::MachineConfig::scaledDefault();
    core::Machine machine(mc);
    func::FuncSim fs(prog);
    struct Src : uarch::InstSource
    {
        func::FuncSim &fs;
        explicit Src(func::FuncSim &fs) : fs(fs) {}
        bool next(func::DynInst &out) override { return fs.step(&out); }
    } src(fs);
    uarch::OoOCore core(mc.core, machine.hier, machine.bp);
    const auto r = core.run(src, 20'000);

    const auto report = core::formatStats(machine, r);
    for (const char *key :
         {"core.ipc", "core.loads", "core.branch_mispredicts",
          "il1.miss_rate", "dl1.hits", "l2.misses", "l1bus.transfers",
          "l2bus.wait_cycles", "bp.lookups", "core.cycles"})
        EXPECT_NE(report.find(key), std::string::npos) << key;
}

TEST(StatsReport, IpcFieldConsistent)
{
    const auto prog = workload::buildSynthetic(
        workload::standardWorkloadParams("vpr"));
    const auto mc = core::MachineConfig::scaledDefault();
    core::Machine machine(mc);
    func::FuncSim fs(prog);
    struct Src : uarch::InstSource
    {
        func::FuncSim &fs;
        explicit Src(func::FuncSim &fs) : fs(fs) {}
        bool next(func::DynInst &out) override { return fs.step(&out); }
    } src(fs);
    uarch::OoOCore core(mc.core, machine.hier, machine.bp);
    const auto r = core.run(src, 10'000);
    char expect[64];
    std::snprintf(expect, sizeof(expect), "%.6f", r.ipc());
    EXPECT_NE(core::formatStats(machine, r).find(expect),
              std::string::npos);
}

// ---------------------------------------------------------------------------
// Workload structure.
// ---------------------------------------------------------------------------

TEST(WorkloadStructure, ChaseChainIsASingleCycle)
{
    // Follow mcf's pointer chain through functional memory: it must form
    // one cycle covering every node (Sattolo construction).
    const auto params = workload::standardWorkloadParams("mcf");
    const auto prog = workload::buildSynthetic(params);
    func::FuncSim fs(prog);

    // Find the chase region: the generator links 64-byte nodes with
    // absolute pointers; locate the first self-consistent chain start by
    // scanning the data segments for a pointer into the same segment.
    const std::uint64_t nodes = params.chaseBytes / 64;
    ASSERT_GT(nodes, 0u);
    std::uint64_t base = 0;
    for (const auto &seg : prog.data) {
        if (seg.bytes.size() == params.chaseBytes) {
            base = seg.base;
            break;
        }
    }
    ASSERT_NE(base, 0u);

    std::set<std::uint64_t> visited;
    std::uint64_t p = base;
    for (std::uint64_t i = 0; i < nodes; ++i) {
        ASSERT_TRUE(visited.insert(p).second) << "cycle shorter than nodes";
        ASSERT_GE(p, base);
        ASSERT_LT(p, base + params.chaseBytes);
        p = fs.memory().read(p, 8);
    }
    EXPECT_EQ(p, base) << "chain does not close into a single cycle";
}

TEST(WorkloadStructure, DispatchTableTargetsAreFunctionEntries)
{
    const auto params = workload::standardWorkloadParams("perl");
    ASSERT_TRUE(params.indirectDispatch);
    const auto prog = workload::buildSynthetic(params);
    func::FuncSim fs(prog);
    // Run a while; every executed Jalr-call target must be inside code.
    func::DynInst d;
    unsigned calls = 0;
    for (int i = 0; i < 100'000 && calls < 50; ++i) {
        ASSERT_TRUE(fs.step(&d));
        if (d.inst.op == isa::Opcode::Jalr &&
            d.inst.branchKind() == isa::BranchKind::Call) {
            ++calls;
            EXPECT_GE(d.nextPc, prog.codeBase);
            EXPECT_LT(d.nextPc, prog.codeEnd());
        }
    }
    EXPECT_EQ(calls, 50u);
}

// ---------------------------------------------------------------------------
// Warm-up boundary cases.
// ---------------------------------------------------------------------------

TEST(WarmupBoundary, FixedPeriodZeroLengthSkip)
{
    core::Machine m(core::MachineConfig::scaledDefault());
    auto fp = core::FunctionalWarmup::fixedPeriod(0.2);
    fp->attach(m);
    fp->beginSkip(0); // must not divide by zero or underflow
    SUCCEED();
}

TEST(WarmupBoundary, FixedPeriodTinySkipWarmsAtMostAll)
{
    core::Machine m(core::MachineConfig::scaledDefault());
    auto fp = core::FunctionalWarmup::fixedPeriod(0.5);
    fp->attach(m);
    fp->beginSkip(3);
    func::DynInst d;
    d.inst.op = isa::Opcode::Ld;
    d.inst.rd = 1;
    d.effAddr = 0x1000;
    for (int i = 0; i < 3; ++i) {
        d.pc = 0x10000 + 4 * i;
        fp->onSkipInst(d, i == 0);
    }
    // ceil/round of 0.5 * 3 -> warms the last 1-2 instructions only.
    EXPECT_GT(fp->work().functionalUpdates, 0u);
    EXPECT_LE(fp->work().functionalUpdates, 8u);
}

TEST(WarmupBoundary, RsrEmptySkipReconstructsNothing)
{
    core::Machine m(core::MachineConfig::scaledDefault());
    auto rsr = core::ReverseReconstructionWarmup::full(0.2);
    rsr->attach(m);
    rsr->beginSkip(0);
    rsr->beforeCluster();
    rsr->afterCluster();
    EXPECT_EQ(rsr->work().reconstructionUpdates, 0u);
    EXPECT_EQ(rsr->work().loggedRecords, 0u);
}

TEST(WarmupBoundary, RsrLogDiscardedBetweenRegions)
{
    core::Machine m(core::MachineConfig::scaledDefault());
    auto rsr = core::ReverseReconstructionWarmup::full(1.0);
    rsr->attach(m);
    func::DynInst d;
    d.inst.op = isa::Opcode::Ld;
    d.inst.rd = 1;
    d.effAddr = 0x2000;
    d.pc = 0x10000;

    rsr->beginSkip(5);
    for (int i = 0; i < 5; ++i)
        rsr->onSkipInst(d, i == 0);
    const auto first_records = rsr->log().records();
    rsr->beforeCluster();
    rsr->afterCluster();
    EXPECT_EQ(rsr->log().records(), 0u) << "log must be discarded";

    rsr->beginSkip(5);
    for (int i = 0; i < 5; ++i)
        rsr->onSkipInst(d, i == 0);
    EXPECT_EQ(rsr->log().records(), first_records);
    rsr->beforeCluster();
    rsr->afterCluster();
}

} // namespace
} // namespace rsr
