/**
 * @file
 * Cross-module integration tests: invariants that only hold when the
 * functional simulator, timing model, warm-up machinery, and statistics
 * cooperate correctly over real workloads.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/sampled_sim.hh"
#include "core/warmup.hh"
#include "func/funcsim.hh"
#include "simpoint/simpoint.hh"
#include "workload/synthetic.hh"

namespace rsr
{
namespace
{

core::SampledConfig
smallConfig()
{
    core::SampledConfig cfg;
    cfg.totalInsts = 400'000;
    cfg.regimen = {15, 2000};
    cfg.machine = core::MachineConfig::scaledDefault();
    return cfg;
}

TEST(Integration, TimingNeverExceedsMachineWidth)
{
    const auto prog = workload::buildSynthetic(
        workload::standardWorkloadParams("vpr"));
    const auto cfg = smallConfig();
    core::NoWarmup none;
    const auto r = core::runSampled(prog, none, cfg);
    for (double ipc : r.clusterIpc) {
        EXPECT_GT(ipc, 0.0);
        EXPECT_LE(ipc, cfg.machine.core.retireWidth);
    }
}

TEST(Integration, FunctionalStateUnaffectedByWarmupPolicy)
{
    // Architectural execution must be bit-identical regardless of which
    // warm-up method observes it: run the same prefix under a sampled
    // run and standalone, and compare final functional state via a
    // deterministic continuation.
    const auto prog = workload::buildSynthetic(
        workload::standardWorkloadParams("twolf"));
    func::FuncSim a(prog), b(prog);
    a.run(100'000);
    b.run(100'000);
    EXPECT_EQ(a.pc(), b.pc());
    EXPECT_EQ(a.state().regs, b.state().regs);
}

TEST(Integration, WarmupOrderingOnCacheSensitiveWorkload)
{
    // gcc is cache-sensitive: SMARTS and RSR must both cut the no-warmup
    // error substantially.
    const auto prog = workload::buildSynthetic(
        workload::standardWorkloadParams("gcc"));
    auto cfg = smallConfig();
    cfg.totalInsts = 800'000;
    cfg.regimen = {25, 2000};
    const double true_ipc =
        core::runFull(prog, cfg.totalInsts, cfg.machine).ipc();

    core::NoWarmup none;
    auto smarts = core::FunctionalWarmup::smarts();
    auto rsr = core::ReverseReconstructionWarmup::full(1.0);
    const double e_none =
        core::runSampled(prog, none, cfg).estimate.relativeError(true_ipc);
    const double e_smarts =
        core::runSampled(prog, *smarts, cfg)
            .estimate.relativeError(true_ipc);
    const double e_rsr =
        core::runSampled(prog, *rsr, cfg).estimate.relativeError(true_ipc);
    EXPECT_LT(e_smarts, e_none * 0.7);
    EXPECT_LT(e_rsr, e_none * 0.7);
}

TEST(Integration, RsrLogBoundedByskipRegion)
{
    // The skip log must hold at most one skip region's records (storage
    // is discarded at every cluster boundary).
    const auto prog = workload::buildSynthetic(
        workload::standardWorkloadParams("twolf"));
    const auto cfg = smallConfig();
    auto rsr = core::ReverseReconstructionWarmup::full(0.2);
    const auto r = core::runSampled(prog, *rsr, cfg);
    // Peak bytes correspond to one region, not the whole run: a loose
    // bound of 32 bytes per skipped instruction of the largest region.
    EXPECT_LT(r.warmWork.peakLogBytes, cfg.totalInsts * 32 / 4);
    EXPECT_GT(r.warmWork.peakLogBytes, 0u);
}

TEST(Integration, SimPointAndSamplingAgreeLoosely)
{
    // Two completely different estimation pipelines should land in the
    // same neighbourhood on an easy workload.
    const auto prog = workload::buildSynthetic(
        workload::standardWorkloadParams("twolf"));
    const auto mc = core::MachineConfig::scaledDefault();
    const std::uint64_t total = 300'000;

    core::SampledConfig cfg;
    cfg.totalInsts = total;
    cfg.regimen = {20, 2000};
    cfg.machine = mc;
    auto smarts = core::FunctionalWarmup::smarts();
    const auto sampled = core::runSampled(prog, *smarts, cfg);

    simpoint::SimPointConfig scfg;
    scfg.intervalSize = 2000;
    scfg.maxK = 15;
    const auto sel = simpoint::pickSimPoints(prog, total, scfg);
    const auto sp = simpoint::runSimPoints(prog, sel, true, mc);

    EXPECT_LT(std::fabs(sp.ipc - sampled.estimate.mean) /
                  sampled.estimate.mean,
              0.5);
}

TEST(Integration, AllWorkloadsSurviveAllPolicies)
{
    // Smoke: every Table-2 policy completes on every workload (tiny run).
    core::SampledConfig cfg;
    cfg.totalInsts = 60'000;
    cfg.regimen = {5, 1000};
    cfg.machine = core::MachineConfig::scaledDefault();
    for (const auto &wp : workload::standardWorkloadParams()) {
        const auto prog = workload::buildSynthetic(wp);
        for (const auto &policy : core::makeTable2Policies()) {
            const auto r = core::runSampled(prog, *policy, cfg);
            EXPECT_EQ(r.clusterIpc.size(), 5u)
                << wp.name << " / " << policy->name();
        }
    }
}

TEST(Integration, ReverseCacheTracksSmartsOnEveryWorkload)
{
    // The paper's core cache-side claim: R$ (100%) lands within a small
    // margin of S$ (SMARTS cache-only warming) on every workload.
    core::SampledConfig cfg;
    cfg.totalInsts = 500'000;
    cfg.regimen = {15, 2000};
    cfg.machine = core::MachineConfig::scaledDefault();
    for (const auto &wp : workload::standardWorkloadParams()) {
        const auto prog = workload::buildSynthetic(wp);
        auto scache = core::FunctionalWarmup::smartsCacheOnly();
        auto rcache = core::ReverseReconstructionWarmup::cacheOnly(1.0);
        const auto rs = core::runSampled(prog, *scache, cfg);
        const auto rr = core::runSampled(prog, *rcache, cfg);
        const double gap =
            std::fabs(rr.estimate.mean - rs.estimate.mean) /
            rs.estimate.mean;
        EXPECT_LT(gap, 0.08) << wp.name << ": R$ " << rr.estimate.mean
                             << " vs S$ " << rs.estimate.mean;
    }
}

} // namespace
} // namespace rsr
