/**
 * @file
 * Branch-unit tests: 2-bit saturating counters, gshare indexing and
 * training, BTB behaviour, the circular return address stack, raw-state
 * accessors used by reconstruction, and functional warming equivalence.
 */

#include <gtest/gtest.h>

#include "branch/predictor.hh"

namespace rsr::branch
{
namespace
{

using isa::BranchKind;

PredictorParams
smallParams()
{
    PredictorParams p;
    p.phtEntries = 256;
    p.historyBits = 8;
    p.btbEntries = 16;
    p.rasEntries = 4;
    return p;
}

TEST(Counter, SaturatesUp)
{
    std::uint8_t c = counter::stronglyNotTaken;
    c = counter::update(c, true);
    c = counter::update(c, true);
    c = counter::update(c, true);
    EXPECT_EQ(c, counter::stronglyTaken);
    c = counter::update(c, true);
    EXPECT_EQ(c, counter::stronglyTaken);
}

TEST(Counter, SaturatesDown)
{
    std::uint8_t c = counter::stronglyTaken;
    for (int i = 0; i < 5; ++i)
        c = counter::update(c, false);
    EXPECT_EQ(c, counter::stronglyNotTaken);
}

TEST(Counter, Direction)
{
    EXPECT_FALSE(counter::taken(counter::stronglyNotTaken));
    EXPECT_FALSE(counter::taken(counter::weaklyNotTaken));
    EXPECT_TRUE(counter::taken(counter::weaklyTaken));
    EXPECT_TRUE(counter::taken(counter::stronglyTaken));
}

TEST(Gshare, PaperDefaults)
{
    GsharePredictor bp;
    EXPECT_EQ(bp.params().phtEntries, 64u * 1024);
    EXPECT_EQ(bp.params().historyBits, 16u);
    EXPECT_EQ(bp.params().btbEntries, 4096u);
    EXPECT_EQ(bp.params().rasEntries, 8u);
}

TEST(Gshare, IndexXorsHistory)
{
    GsharePredictor bp(smallParams());
    bp.setGhr(0);
    const auto i0 = bp.phtIndex(0x1000);
    bp.setGhr(0xff);
    const auto i1 = bp.phtIndex(0x1000);
    EXPECT_NE(i0, i1);
    EXPECT_EQ(i0 ^ i1, 0xffu);
}

TEST(Gshare, TrainsTowardTaken)
{
    GsharePredictor bp(smallParams());
    // Repeated taken outcomes with GHR evolving: each (pc, ghr) entry
    // trains; re-predict under the same history by resetting GHR.
    bp.setGhr(0);
    const auto idx = bp.phtIndex(0x2000);
    bp.setPhtEntry(idx, counter::weaklyNotTaken);
    auto p = bp.predict(0x2000, BranchKind::Conditional);
    EXPECT_FALSE(p.taken);
    bp.update(0x2000, BranchKind::Conditional, true, 0x3000);
    bp.setGhr(0);
    p = bp.predict(0x2000, BranchKind::Conditional);
    EXPECT_TRUE(p.taken); // weak NT + taken -> weak taken
}

TEST(Gshare, GhrShiftsOnConditionalOnly)
{
    GsharePredictor bp(smallParams());
    bp.setGhr(0);
    bp.update(0x2000, BranchKind::Conditional, true, 0);
    EXPECT_EQ(bp.ghr(), 1u);
    bp.update(0x2000, BranchKind::Conditional, false, 0);
    EXPECT_EQ(bp.ghr(), 2u);
    bp.update(0x2000, BranchKind::Call, true, 0x50);
    EXPECT_EQ(bp.ghr(), 2u); // calls don't shift history
}

TEST(Gshare, GhrMasked)
{
    GsharePredictor bp(smallParams());
    for (int i = 0; i < 20; ++i)
        bp.update(0, BranchKind::Conditional, true, 0);
    EXPECT_EQ(bp.ghr(), 0xffu);
}

TEST(Btb, InstallsOnTaken)
{
    GsharePredictor bp(smallParams());
    bp.update(0x4000, BranchKind::Conditional, true, 0x5000);
    const auto idx = bp.btbIndex(0x4000);
    EXPECT_TRUE(bp.btbEntryValid(idx));
    EXPECT_EQ(bp.btbEntryTag(idx), 0x4000u);
    EXPECT_EQ(bp.btbEntryTarget(idx), 0x5000u);
}

TEST(Btb, NotInstalledOnNotTaken)
{
    GsharePredictor bp(smallParams());
    bp.update(0x4000, BranchKind::Conditional, false, 0x5000);
    EXPECT_FALSE(bp.btbEntryValid(bp.btbIndex(0x4000)));
}

TEST(Btb, ReturnsDoNotTrainBtb)
{
    GsharePredictor bp(smallParams());
    bp.update(0x4000, BranchKind::Return, true, 0x5000);
    EXPECT_FALSE(bp.btbEntryValid(bp.btbIndex(0x4000)));
}

TEST(Btb, ProvidesIndirectTarget)
{
    GsharePredictor bp(smallParams());
    bp.update(0x4000, BranchKind::IndirectJump, true, 0x7000);
    const auto p = bp.predict(0x4000, BranchKind::IndirectJump);
    EXPECT_TRUE(p.targetValid);
    EXPECT_EQ(p.target, 0x7000u);
}

TEST(Btb, TagMismatchNoTarget)
{
    GsharePredictor bp(smallParams());
    bp.update(0x4000, BranchKind::IndirectJump, true, 0x7000);
    // Aliases to the same entry (16 entries * 4 bytes stride).
    const auto p = bp.predict(0x4000 + 16 * 4, BranchKind::IndirectJump);
    EXPECT_FALSE(p.targetValid);
}

TEST(Ras, PushPopLifo)
{
    GsharePredictor bp(smallParams());
    bp.rasPush(0x100);
    bp.rasPush(0x200);
    EXPECT_EQ(bp.rasPop(), 0x200u);
    EXPECT_EQ(bp.rasPop(), 0x100u);
    EXPECT_EQ(bp.rasPop(), 0u); // empty
}

TEST(Ras, OverflowWrapsKeepingNewest)
{
    GsharePredictor bp(smallParams()); // 4 entries
    for (std::uint64_t i = 1; i <= 6; ++i)
        bp.rasPush(i * 0x10);
    EXPECT_EQ(bp.rasPop(), 0x60u);
    EXPECT_EQ(bp.rasPop(), 0x50u);
    EXPECT_EQ(bp.rasPop(), 0x40u);
    EXPECT_EQ(bp.rasPop(), 0x30u);
    EXPECT_EQ(bp.rasPop(), 0u); // older entries lost to wrap
}

TEST(Ras, CallPredictsPushesReturnPops)
{
    GsharePredictor bp(smallParams());
    bp.predict(0x100, BranchKind::Call);
    const auto p = bp.predict(0x200, BranchKind::Return);
    EXPECT_TRUE(p.taken);
    EXPECT_EQ(p.target, 0x104u);
}

TEST(Ras, SetContentsTopFirst)
{
    GsharePredictor bp(smallParams());
    bp.setRasContents({0x30, 0x20, 0x10});
    EXPECT_EQ(bp.rasPop(), 0x30u);
    EXPECT_EQ(bp.rasPop(), 0x20u);
    EXPECT_EQ(bp.rasPop(), 0x10u);
}

TEST(Ras, ContentsRoundTrip)
{
    GsharePredictor bp(smallParams());
    const std::vector<std::uint64_t> want{0x44, 0x33, 0x22};
    bp.setRasContents(want);
    EXPECT_EQ(bp.rasContents(), want);
}

TEST(Predictor, WarmApplyEquivalentToPredictUpdate)
{
    GsharePredictor a(smallParams()), b(smallParams());
    struct Ev
    {
        std::uint64_t pc;
        BranchKind kind;
        bool taken;
        std::uint64_t target;
    };
    const Ev evs[] = {
        {0x100, BranchKind::Conditional, true, 0x140},
        {0x144, BranchKind::Call, true, 0x300},
        {0x310, BranchKind::Conditional, false, 0x0},
        {0x320, BranchKind::Return, true, 0x148},
        {0x150, BranchKind::IndirectJump, true, 0x500},
        {0x500, BranchKind::Conditional, true, 0x100},
    };
    for (const auto &e : evs) {
        a.predict(e.pc, e.kind);
        a.update(e.pc, e.kind, e.taken, e.target);
        b.warmApply(e.pc, e.kind, e.taken, e.target);
    }
    EXPECT_EQ(a.ghr(), b.ghr());
    EXPECT_EQ(a.rasContents(), b.rasContents());
    for (unsigned i = 0; i < a.params().phtEntries; ++i)
        ASSERT_EQ(a.phtEntry(i), b.phtEntry(i)) << i;
    for (unsigned i = 0; i < a.params().btbEntries; ++i) {
        ASSERT_EQ(a.btbEntryValid(i), b.btbEntryValid(i));
        if (a.btbEntryValid(i)) {
            ASSERT_EQ(a.btbEntryTarget(i), b.btbEntryTarget(i));
        }
    }
}

TEST(Predictor, ResetRestoresPowerOn)
{
    GsharePredictor bp(smallParams());
    bp.warmApply(0x100, BranchKind::Conditional, true, 0x200);
    bp.rasPush(0x42);
    bp.reset();
    EXPECT_EQ(bp.ghr(), 0u);
    EXPECT_TRUE(bp.rasContents().empty());
    EXPECT_EQ(bp.phtEntry(bp.phtIndexWith(0x100, 0)),
              counter::weaklyNotTaken);
}

/** Reconstruction hook: every PHT/BTB access notifies the client first. */
struct CountingClient : ReconstructionClient
{
    int phtCalls = 0;
    int btbCalls = 0;
    void ensurePht(std::uint32_t) override { ++phtCalls; }
    void ensureBtb(std::uint32_t) override { ++btbCalls; }
};

TEST(Predictor, ReconstructionClientNotified)
{
    GsharePredictor bp(smallParams());
    CountingClient client;
    bp.setReconstructionClient(&client);
    bp.predict(0x100, BranchKind::Conditional);
    EXPECT_EQ(client.phtCalls, 1);
    bp.update(0x100, BranchKind::Conditional, true, 0x200);
    EXPECT_EQ(client.phtCalls, 2);
    EXPECT_GE(client.btbCalls, 1);
    bp.setReconstructionClient(nullptr);
    bp.predict(0x100, BranchKind::Conditional);
    EXPECT_EQ(client.phtCalls, 2);
}

} // namespace
} // namespace rsr::branch
