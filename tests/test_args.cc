/**
 * @file
 * Tests for the command-line argument parser and the policy-by-name
 * factory used by the rsr_sim tool.
 */

#include <gtest/gtest.h>

#include "core/warmup.hh"
#include "util/args.hh"
#include "util/error.hh"

namespace rsr
{
namespace
{

ArgParser
parse(std::initializer_list<const char *> tokens)
{
    std::vector<const char *> argv{"prog"};
    argv.insert(argv.end(), tokens.begin(), tokens.end());
    return ArgParser(static_cast<int>(argv.size()), argv.data());
}

TEST(ArgParser, CommandAndFlags)
{
    const auto a =
        parse({"sample", "--workload", "gcc", "--insts", "1000", "--csv"});
    EXPECT_EQ(a.command(), "sample");
    EXPECT_EQ(a.get("workload"), "gcc");
    EXPECT_EQ(a.getU64("insts", 0), 1000u);
    EXPECT_TRUE(a.has("csv"));
    EXPECT_FALSE(a.has("seed"));
}

TEST(ArgParser, NoCommand)
{
    const auto a = parse({"--flag", "v"});
    EXPECT_EQ(a.command(), "");
    EXPECT_EQ(a.get("flag"), "v");
}

TEST(ArgParser, Defaults)
{
    const auto a = parse({"cmd"});
    EXPECT_EQ(a.get("missing", "fallback"), "fallback");
    EXPECT_EQ(a.getU64("missing", 42), 42u);
    EXPECT_DOUBLE_EQ(a.getDouble("missing", 1.5), 1.5);
}

TEST(ArgParser, SwitchBeforeValuedFlag)
{
    const auto a = parse({"cmd", "--warm", "--interval", "5000"});
    EXPECT_TRUE(a.has("warm"));
    EXPECT_EQ(a.get("warm"), "");
    EXPECT_EQ(a.getU64("interval", 0), 5000u);
}

TEST(ArgParser, HexIntegers)
{
    const auto a = parse({"cmd", "--seed", "0xff"});
    EXPECT_EQ(a.getU64("seed", 0), 255u);
}

TEST(ArgParser, UnknownFlagDetection)
{
    const auto a = parse({"cmd", "--good", "1", "--bad", "2"});
    const auto unknown = a.unknownFlags({"good"});
    ASSERT_EQ(unknown.size(), 1u);
    EXPECT_EQ(unknown[0], "bad");
}

TEST(ArgParser, NonIntegerThrowsUserError)
{
    const auto a = parse({"cmd", "--insts", "lots"});
    EXPECT_THROW(a.getU64("insts", 0), UserError);
}

TEST(ArgParser, PositiveU64AcceptsDigitsAndFallsBack)
{
    const auto a = parse({"run", "--jobs", "4"});
    EXPECT_EQ(a.getPositiveU64("jobs", 1), 4u);
    EXPECT_EQ(a.getPositiveU64("missing", 7), 7u);
}

TEST(ArgParser, PositiveU64RejectsZeroNegativeAndJunk)
{
    // strtoull would happily wrap "-3" to a huge value; the validator
    // must reject it instead.
    for (const char *bad : {"0", "-3", "four", "4x", "0x4", ""}) {
        const auto a = parse({"run", "--jobs", bad});
        EXPECT_THROW(a.getPositiveU64("jobs", 1), UserError) << bad;
    }
}

TEST(ArgParser, UnknownFlagRejectedWithSuggestion)
{
    // The classic typo: --cluster-sizes used to be silently ignored.
    const auto a = parse({"sample", "--cluster-sizes", "3000"});
    try {
        a.requireKnown({"clusters", "cluster-size", "workload"});
        FAIL() << "requireKnown did not throw";
    } catch (const UserError &e) {
        EXPECT_NE(std::string(e.what()).find("--cluster-sizes"),
                  std::string::npos);
        EXPECT_NE(std::string(e.what()).find(
                      "did you mean --cluster-size?"),
                  std::string::npos);
    }
}

TEST(ArgParser, RequireKnownAcceptsValidFlags)
{
    const auto a = parse({"sample", "--workload", "gcc"});
    EXPECT_NO_THROW(a.requireKnown({"workload", "insts"}));
}

TEST(NearestName, PicksClosestWithinCutoff)
{
    const std::set<std::string> names{"cluster-size", "clusters", "seed"};
    EXPECT_EQ(nearestName("cluster-sizes", names), "cluster-size");
    EXPECT_EQ(nearestName("sede", names), "seed");
    // Nothing remotely close: no suggestion.
    EXPECT_EQ(nearestName("zzzzzzzzzz", names), "");
}

TEST(PolicyByName, AllStandardNames)
{
    using core::makePolicyByName;
    EXPECT_EQ(makePolicyByName("none")->name(), "None");
    EXPECT_EQ(makePolicyByName("smarts")->name(), "S$BP");
    EXPECT_EQ(makePolicyByName("scache")->name(), "S$");
    EXPECT_EQ(makePolicyByName("sbp")->name(), "SBP");
    EXPECT_EQ(makePolicyByName("fp40")->name(), "FP (40%)");
    EXPECT_EQ(makePolicyByName("rsr20")->name(), "R$BP (20%)");
    EXPECT_EQ(makePolicyByName("rsr100")->name(), "R$BP (100%)");
    EXPECT_EQ(makePolicyByName("rcache80")->name(), "R$ (80%)");
    EXPECT_EQ(makePolicyByName("rbp")->name(), "RBP");
    EXPECT_EQ(makePolicyByName("rsr20+stale")->name(),
              "R$BP (20%)+stale");
}

TEST(PolicyByName, UnknownThrowsUserError)
{
    try {
        core::makePolicyByName("warmify");
        FAIL() << "makePolicyByName did not throw";
    } catch (const UserError &e) {
        EXPECT_NE(std::string(e.what()).find("unknown warm-up policy"),
                  std::string::npos);
    }
}

TEST(PolicyByName, BadPercentThrowsUserError)
{
    EXPECT_THROW(core::makePolicyByName("rsr0"), UserError);
    EXPECT_THROW(core::makePolicyByName("fpxx"), UserError);
}

} // namespace
} // namespace rsr
