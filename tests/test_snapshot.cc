/**
 * @file
 * Tests for the versioned, checksummed component snapshot layer: framed
 * round trips for every Snapshotable (Cache, MemoryHierarchy,
 * GsharePredictor, Machine) and the corrupt-input negative paths
 * (truncation, bit flips, component mismatch, version and geometry
 * mismatches, trailing bytes).
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstddef>

#include "branch/predictor.hh"
#include "cache/cache.hh"
#include "cache/hierarchy.hh"
#include "core/machine.hh"
#include "util/random.hh"
#include "util/snapshot.hh"

namespace rsr::core
{
namespace
{

cache::CacheParams
smallCacheParams()
{
    cache::CacheParams p;
    p.name = "test";
    p.sizeBytes = 64 * 4 * 16;
    p.assoc = 4;
    p.lineBytes = 64;
    p.writePolicy = cache::WritePolicy::WriteBackAllocate;
    return p;
}

branch::PredictorParams
smallPredictorParams()
{
    branch::PredictorParams pp;
    pp.phtEntries = 256;
    pp.historyBits = 8;
    pp.btbEntries = 16;
    pp.rasEntries = 4;
    return pp;
}

void
churnMachine(Machine &m, unsigned seed)
{
    Rng rng(seed);
    for (int i = 0; i < 4000; ++i) {
        const std::uint64_t addr = rng.below(1 << 16);
        m.hier.warmAccess(addr, rng.chance(0.3), rng.chance(0.2));
        if (rng.chance(0.25)) {
            const std::uint64_t pc = 0x1000 + 4 * rng.below(512);
            m.bp.warmApply(pc, isa::BranchKind::Conditional,
                           rng.chance(0.6), pc + 32);
        }
    }
}

TEST(Snapshot, FourccRoundTrip)
{
    constexpr std::uint32_t tag = fourcc('M', 'A', 'C', 'H');
    EXPECT_EQ(fourccName(tag), "MACH");
}

TEST(Snapshot, CacheRoundTripIsExact)
{
    cache::Cache a(smallCacheParams()), b(smallCacheParams());
    Rng rng(11);
    for (int i = 0; i < 2000; ++i)
        a.access(rng.below(512) * 64, rng.chance(0.4));

    const auto bytes = snapshotToBytes(a);
    restoreFromBytes(b, bytes);
    // A restored component must re-snapshot to the identical bytes.
    EXPECT_EQ(snapshotToBytes(b), bytes);
    for (std::uint64_t line = 0; line < 512; ++line)
        ASSERT_EQ(a.probe(line * 64), b.probe(line * 64)) << line;
}

TEST(Snapshot, PredictorRoundTripIsExact)
{
    branch::GsharePredictor a(smallPredictorParams()),
        b(smallPredictorParams());
    Rng rng(12);
    for (int i = 0; i < 3000; ++i) {
        const std::uint64_t pc = 0x4000 + 4 * rng.below(1024);
        a.warmApply(pc, isa::BranchKind::Conditional, rng.chance(0.7),
                    pc + 64);
    }
    a.rasPush(0xabc);

    const auto bytes = snapshotToBytes(a);
    restoreFromBytes(b, bytes);
    EXPECT_EQ(snapshotToBytes(b), bytes);
    EXPECT_EQ(a.ghr(), b.ghr());
    EXPECT_EQ(a.rasContents(), b.rasContents());
}

TEST(Snapshot, HierarchyAndMachineRoundTrip)
{
    const auto mc = MachineConfig::scaledDefault();
    Machine a(mc), b(mc);
    churnMachine(a, 13);

    const auto hier_bytes = snapshotToBytes(a.hier);
    restoreFromBytes(b.hier, hier_bytes);
    EXPECT_EQ(snapshotToBytes(b.hier), hier_bytes);

    const auto bytes = snapshotToBytes(a);
    Machine c(mc);
    restoreFromBytes(c, bytes);
    EXPECT_EQ(snapshotToBytes(c), bytes);
}

TEST(Snapshot, RestoreOverwritesDivergedState)
{
    const auto mc = MachineConfig::scaledDefault();
    Machine a(mc), b(mc);
    churnMachine(a, 14);
    churnMachine(b, 99); // b diverges first, then is restored over
    const auto bytes = snapshotToBytes(a);
    restoreFromBytes(b, bytes);
    EXPECT_EQ(snapshotToBytes(b), bytes);
}

TEST(Snapshot, TruncatedSnapshotThrowsCorrupt)
{
    const auto mc = MachineConfig::scaledDefault();
    Machine a(mc);
    churnMachine(a, 15);
    auto bytes = snapshotToBytes(a);
    bytes.resize(bytes.size() / 2);
    Machine b(mc);
    EXPECT_THROW(restoreFromBytes(b, bytes), CorruptInputError);
}

TEST(Snapshot, FlippedPayloadByteThrowsCorrupt)
{
    cache::Cache a(smallCacheParams()), b(smallCacheParams());
    Rng rng(16);
    for (int i = 0; i < 500; ++i)
        a.access(rng.below(256) * 64, false);
    auto bytes = snapshotToBytes(a);
    bytes[bytes.size() / 2] ^= 0x40;
    EXPECT_THROW(restoreFromBytes(b, bytes), CorruptInputError);
}

TEST(Snapshot, ComponentMismatchThrowsCorrupt)
{
    cache::Cache c(smallCacheParams());
    branch::GsharePredictor p(smallPredictorParams());
    // A cache frame fed to a predictor must fail on the tag, not
    // misparse.
    EXPECT_THROW(restoreFromBytes(p, snapshotToBytes(c)),
                 CorruptInputError);
}

TEST(Snapshot, UnsupportedVersionThrowsCorrupt)
{
    cache::Cache a(smallCacheParams()), b(smallCacheParams());
    auto bytes = snapshotToBytes(a);
    // Frame header layout: tag (4), then version (4); the checksum only
    // covers the payload, so this exercises the version check itself.
    bytes[4] = 0x7f;
    EXPECT_THROW(restoreFromBytes(b, bytes), CorruptInputError);
}

TEST(Snapshot, GeometryMismatchThrowsCorrupt)
{
    cache::Cache a(smallCacheParams());
    auto other = smallCacheParams();
    other.assoc = 2;
    cache::Cache b(other);
    EXPECT_THROW(restoreFromBytes(b, snapshotToBytes(a)),
                 CorruptInputError);
}

/**
 * Swap the first pair of adjacent differing 8-byte words in a frame's
 * payload — the byte-level image of a snapshot()/restore() member-order
 * mismatch. Returns false if every adjacent pair is identical.
 */
bool
swapAdjacentPayloadWords(std::vector<std::uint8_t> &bytes,
                         std::size_t payload_start)
{
    for (std::size_t off = payload_start; off + 16 <= bytes.size();
         off += 8) {
        const auto word = bytes.begin() + static_cast<std::ptrdiff_t>(off);
        if (std::equal(word, word + 8, word + 8))
            continue;
        std::swap_ranges(word, word + 8, word + 8);
        return true;
    }
    return false;
}

TEST(Snapshot, ReorderedCachePayloadWordsThrowCorrupt)
{
    cache::Cache a(smallCacheParams()), b(smallCacheParams());
    Rng rng(17);
    for (int i = 0; i < 2000; ++i)
        a.access(rng.below(512) * 64, rng.chance(0.4));
    auto bytes = snapshotToBytes(a);
    // Frame header is 24 bytes (tag, version, length, checksum); the
    // member stream follows. The FNV payload checksum is position-
    // sensitive, so reordered members cannot restore silently — the
    // runtime complement of rsrlint's snap-asymmetry order check.
    ASSERT_TRUE(swapAdjacentPayloadWords(bytes, 24));
    EXPECT_THROW(restoreFromBytes(b, bytes), CorruptInputError);
}

TEST(Snapshot, ReorderedPredictorPayloadWordsThrowCorrupt)
{
    branch::GsharePredictor a(smallPredictorParams()),
        b(smallPredictorParams());
    Rng rng(18);
    for (int i = 0; i < 2000; ++i) {
        const std::uint64_t pc = 0x4000 + 4 * rng.below(1024);
        a.warmApply(pc, isa::BranchKind::Conditional, rng.chance(0.6),
                    pc + 64);
    }
    auto bytes = snapshotToBytes(a);
    ASSERT_TRUE(swapAdjacentPayloadWords(bytes, 24));
    EXPECT_THROW(restoreFromBytes(b, bytes), CorruptInputError);
}

TEST(Snapshot, TrailingBytesThrowCorrupt)
{
    cache::Cache a(smallCacheParams()), b(smallCacheParams());
    auto bytes = snapshotToBytes(a);
    bytes.push_back(0);
    EXPECT_THROW(restoreFromBytes(b, bytes), CorruptInputError);
}

} // namespace
} // namespace rsr::core
