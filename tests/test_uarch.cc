/**
 * @file
 * Out-of-order core tests. Uses hand-crafted DynInst streams to check
 * dependence-limited issue, width limits, memory latency exposure, branch
 * misprediction penalties, and the checkpoint (unresolved-branch) limit.
 */

#include <gtest/gtest.h>

#include <vector>

#include "branch/predictor.hh"
#include "cache/hierarchy.hh"
#include "uarch/core.hh"

namespace rsr::uarch
{
namespace
{

using func::DynInst;
using isa::Inst;
using isa::Opcode;

/** Serves a pre-built vector of DynInsts. */
class VectorSource : public InstSource
{
  public:
    explicit VectorSource(std::vector<DynInst> insts)
        : insts(std::move(insts))
    {}

    bool
    next(DynInst &out) override
    {
        if (pos >= insts.size())
            return false;
        out = insts[pos++];
        return true;
    }

  private:
    std::vector<DynInst> insts;
    std::size_t pos = 0;
};

/**
 * PCs cycle within one I-cache line so fetch-side misses do not pollute
 * the back-end behaviour under test; fills seq/pc/nextPc.
 */
std::vector<DynInst>
sequence(const std::vector<Inst> &insts)
{
    std::vector<DynInst> out(insts.size());
    for (std::size_t i = 0; i < insts.size(); ++i) {
        out[i].seq = i;
        out[i].pc = 0x10000 + 4 * (i % 16);
        out[i].nextPc = out[i].pc + 4;
        out[i].inst = insts[i];
    }
    return out;
}

Inst
alu(Opcode op, unsigned rd, unsigned rs1, unsigned rs2)
{
    Inst in;
    in.op = op;
    in.rd = static_cast<std::uint8_t>(rd);
    in.rs1 = static_cast<std::uint8_t>(rs1);
    in.rs2 = static_cast<std::uint8_t>(rs2);
    return in;
}

struct TestMachine
{
    TestMachine()
        : hier(cache::HierarchyParams::paperDefault()), bp(), core(params, hier, bp)
    {}

    explicit TestMachine(const CoreParams &p)
        : params(p), hier(cache::HierarchyParams::paperDefault()), bp(),
          core(params, hier, bp)
    {}

    CoreParams params;
    cache::MemoryHierarchy hier;
    branch::GsharePredictor bp;
    OoOCore core;
};

TEST(OoOCore, EmptyStream)
{
    TestMachine m;
    VectorSource src({});
    const auto r = m.core.run(src, 100);
    EXPECT_EQ(r.insts, 0u);
}

TEST(OoOCore, IndependentAluReachIssueWidth)
{
    // 4000 independent single-cycle ops on distinct registers: IPC should
    // approach the issue width (4), limited only by ramp-up.
    std::vector<Inst> insts;
    for (int i = 0; i < 4000; ++i)
        insts.push_back(alu(Opcode::Add, 1 + (i % 8), 9, 10));
    TestMachine m;
    VectorSource src(sequence(insts));
    const auto r = m.core.run(src, insts.size());
    EXPECT_EQ(r.insts, insts.size());
    EXPECT_GT(r.ipc(), 3.0);
    EXPECT_LE(r.ipc(), 4.0 + 1e-9);
}

TEST(OoOCore, DependentChainSerializes)
{
    // A chain through r1 issues at most one per cycle.
    std::vector<Inst> insts;
    for (int i = 0; i < 2000; ++i)
        insts.push_back(alu(Opcode::Add, 1, 1, 2));
    TestMachine m;
    VectorSource src(sequence(insts));
    const auto r = m.core.run(src, insts.size());
    EXPECT_LT(r.ipc(), 1.05);
    EXPECT_GT(r.ipc(), 0.8);
}

TEST(OoOCore, DivLatencyExposedByChain)
{
    std::vector<Inst> insts;
    for (int i = 0; i < 300; ++i)
        insts.push_back(alu(Opcode::Div, 1, 1, 2));
    TestMachine m;
    VectorSource src(sequence(insts));
    const auto r = m.core.run(src, insts.size());
    // Each div in the chain costs ~intDivLat cycles.
    const double cpi = 1.0 / r.ipc();
    EXPECT_NEAR(cpi, m.params.intDivLat, 2.0);
}

TEST(OoOCore, MulLatencyExposedByChain)
{
    std::vector<Inst> insts;
    for (int i = 0; i < 300; ++i)
        insts.push_back(alu(Opcode::Mul, 1, 1, 2));
    TestMachine m;
    VectorSource src(sequence(insts));
    const auto r = m.core.run(src, insts.size());
    const double cpi = 1.0 / r.ipc();
    EXPECT_NEAR(cpi, m.params.intMulLat, 1.0);
}

TEST(OoOCore, LoadMissLatencyExposed)
{
    // Pointer-chase-like: each load's address register is written by the
    // previous load (dependence through r1), and every access is a fresh
    // line -> full memory latency per load.
    std::vector<DynInst> stream;
    for (int i = 0; i < 100; ++i) {
        DynInst d;
        d.seq = i;
        d.pc = 0x10000 + 4 * i;
        d.nextPc = d.pc + 4;
        d.inst.op = Opcode::Ld;
        d.inst.rd = 1;
        d.inst.rs1 = 1;
        d.effAddr = 0x1000000 + i * 4096;
        stream.push_back(d);
    }
    TestMachine m;
    VectorSource src(stream);
    const auto r = m.core.run(src, stream.size());
    const double cpi = 1.0 / r.ipc();
    // L1 miss through L2 to memory is ~224 cycles.
    EXPECT_GT(cpi, 150.0);
    EXPECT_LT(cpi, 300.0);
}

TEST(OoOCore, IndependentLoadsOverlap)
{
    // Same misses, but independent address registers: the OoO window
    // must overlap them and beat the serialized chain by a wide margin.
    std::vector<DynInst> stream;
    for (int i = 0; i < 100; ++i) {
        DynInst d;
        d.seq = i;
        d.pc = 0x10000 + 4 * i;
        d.nextPc = d.pc + 4;
        d.inst.op = Opcode::Ld;
        d.inst.rd = 2 + (i % 8);
        d.inst.rs1 = 1;
        d.effAddr = 0x1000000 + i * 4096;
        stream.push_back(d);
    }
    TestMachine m;
    VectorSource src(stream);
    const auto r = m.core.run(src, stream.size());
    const double cpi = 1.0 / r.ipc();
    EXPECT_LT(cpi, 60.0); // misses overlap (bus-limited, not latency)
}

TEST(OoOCore, CorrectlyPredictedLoopBranchCheap)
{
    // Train a loop-closing branch, then measure: well-predicted taken
    // branches should not serialize fetch.
    std::vector<DynInst> stream;
    // Two-instruction loop: add; bne taken back.
    for (int i = 0; i < 2000; ++i) {
        DynInst d;
        d.seq = stream.size();
        if (i % 2 == 0) {
            d.pc = 0x10000;
            d.nextPc = 0x10004;
            d.inst = alu(Opcode::Add, 1 + (i % 4), 9, 10);
        } else {
            d.pc = 0x10004;
            d.nextPc = 0x10000;
            d.inst.op = Opcode::Bne;
            d.inst.rs1 = 9;
            d.inst.rs2 = 0;
            d.inst.imm = -2;
            d.taken = true;
        }
        stream.push_back(d);
    }
    TestMachine m;
    VectorSource src(stream);
    const auto r = m.core.run(src, stream.size());
    // The counter trains once the global history register stabilizes
    // (one cold entry per distinct GHR value on the way to all-ones);
    // after that, taken-branch fetch breaks cap the 2-inst loop near
    // IPC 2 with no further mispredicts.
    EXPECT_LT(r.branchMispredicts, 40u);
    EXPECT_GT(r.ipc(), 1.0);
}

TEST(OoOCore, MispredictsCostAtLeastMinPenalty)
{
    // Alternating taken/not-taken conditional at one PC with a 1-bit-ish
    // pattern the 2-bit counter cannot capture -> many mispredicts.
    std::vector<DynInst> stream;
    for (int i = 0; i < 1000; ++i) {
        DynInst d;
        d.seq = i;
        d.pc = 0x10000;
        d.inst.op = Opcode::Beq;
        d.inst.rs1 = 1;
        d.inst.rs2 = 2;
        d.inst.imm = 4;
        d.taken = (i % 2) == 0;
        d.nextPc = d.taken ? d.pc + 4 + 16 : d.pc + 4;
        stream.push_back(d);
    }
    TestMachine m;
    VectorSource src(stream);
    const auto r = m.core.run(src, stream.size());
    EXPECT_GT(r.branchMispredicts, 100u);
    // Every mispredict costs at least resolve + minMispredictPenalty.
    EXPECT_GT(r.cycles, r.branchMispredicts * m.params.minMispredictPenalty);
}

TEST(OoOCore, RobLimitCapsOverlap)
{
    // Long-latency independent loads: a tiny ROB must be slower than the
    // default because fewer misses can overlap.
    auto mk_stream = [] {
        std::vector<DynInst> s;
        for (int i = 0; i < 200; ++i) {
            DynInst d;
            d.seq = i;
            d.pc = 0x10000 + 4 * (i % 16); // stay in one I-cache line
            d.nextPc = d.pc + 4;
            d.inst.op = Opcode::Ld;
            d.inst.rd = 2 + (i % 8);
            d.inst.rs1 = 1;
            d.effAddr = 0x1000000 + i * 4096;
            s.push_back(d);
        }
        return s;
    };
    CoreParams small;
    small.robSize = 8;
    small.iqSize = 8;
    TestMachine big, tiny(small);
    VectorSource s1(mk_stream()), s2(mk_stream());
    const auto rb = big.core.run(s1, 200);
    const auto rt = tiny.core.run(s2, 200);
    EXPECT_LT(rb.cycles * 2, rt.cycles);
}

TEST(OoOCore, IssueWidthLimits)
{
    CoreParams narrow;
    narrow.issueWidth = 1;
    std::vector<Inst> insts;
    for (int i = 0; i < 2000; ++i)
        insts.push_back(alu(Opcode::Add, 1 + (i % 8), 9, 10));
    TestMachine m(narrow);
    VectorSource src(sequence(insts));
    const auto r = m.core.run(src, insts.size());
    EXPECT_LE(r.ipc(), 1.0 + 1e-9);
    // The single compulsory I-cache miss (~220 cycles) eats ~10% of a
    // 2000-instruction run at IPC 1.
    EXPECT_GT(r.ipc(), 0.85);
}

TEST(OoOCore, StopsAtMaxInsts)
{
    std::vector<Inst> insts;
    for (int i = 0; i < 100; ++i)
        insts.push_back(alu(Opcode::Add, 1, 9, 10));
    TestMachine m;
    VectorSource src(sequence(insts));
    const auto r = m.core.run(src, 40);
    EXPECT_EQ(r.insts, 40u);
}

TEST(OoOCore, CountsCondBranches)
{
    std::vector<DynInst> stream;
    for (int i = 0; i < 50; ++i) {
        DynInst d;
        d.seq = i;
        d.pc = 0x10000 + 4 * i;
        d.nextPc = d.pc + 4;
        if (i % 5 == 0) {
            d.inst.op = Opcode::Beq;
            d.inst.rs1 = 1;
            d.inst.rs2 = 2;
            d.taken = false;
        } else {
            d.inst = alu(Opcode::Add, 1, 9, 10);
        }
        stream.push_back(d);
    }
    TestMachine m;
    VectorSource src(stream);
    const auto r = m.core.run(src, stream.size());
    EXPECT_EQ(r.condBranches, 10u);
}

TEST(OoOCore, DeterministicAcrossRuns)
{
    std::vector<Inst> insts;
    for (int i = 0; i < 500; ++i)
        insts.push_back(alu(i % 7 ? Opcode::Add : Opcode::Mul,
                            1 + (i % 5), 1 + ((i + 1) % 5), 9));
    TestMachine m1, m2;
    VectorSource s1(sequence(insts)), s2(sequence(insts));
    const auto r1 = m1.core.run(s1, insts.size());
    const auto r2 = m2.core.run(s2, insts.size());
    EXPECT_EQ(r1.cycles, r2.cycles);
    EXPECT_EQ(r1.insts, r2.insts);
}

TEST(OoOCore, SharedStateWarmsAcrossRuns)
{
    // Two identical runs on one machine: the second sees warm caches and
    // a trained predictor, so it must be no slower.
    std::vector<DynInst> stream;
    for (int i = 0; i < 500; ++i) {
        DynInst d;
        d.seq = i;
        d.pc = 0x10000 + 4 * (i % 50);
        d.nextPc = d.pc + 4;
        d.inst.op = Opcode::Ld;
        d.inst.rd = 2 + (i % 8);
        d.inst.rs1 = 1;
        d.effAddr = 0x1000000 + (i % 64) * 64;
        stream.push_back(d);
    }
    TestMachine m;
    VectorSource s1(stream), s2(stream);
    const auto cold = m.core.run(s1, stream.size());
    m.hier.l1Bus().reset();
    m.hier.l2Bus().reset();
    const auto warm = m.core.run(s2, stream.size());
    EXPECT_LT(warm.cycles, cold.cycles);
}

TEST(OoOCore, StoreForwardingAcceleratesDependentLoads)
{
    // store to X; load from X shortly after, repeatedly at fresh lines so
    // the load misses the cache: with forwarding the load completes from
    // the LSQ, without it each load pays the full miss.
    auto mk = [] {
        std::vector<DynInst> s;
        for (int i = 0; i < 400; i += 2) {
            DynInst st;
            st.seq = i;
            st.pc = 0x10000 + 4 * (i % 16);
            st.nextPc = st.pc + 4;
            st.inst.op = Opcode::Sd;
            st.inst.rs1 = 1;
            st.inst.rs2 = 9;
            st.effAddr = 0x2000000 + (i / 2) * 4096;
            s.push_back(st);
            DynInst ld;
            ld.seq = i + 1;
            ld.pc = st.pc + 4;
            ld.nextPc = ld.pc + 4;
            ld.inst.op = Opcode::Ld;
            ld.inst.rd = 2 + (i % 8);
            ld.inst.rs1 = 1;
            ld.effAddr = st.effAddr;
            s.push_back(ld);
        }
        return s;
    };
    CoreParams fwd;
    fwd.storeForwarding = true;
    TestMachine with(fwd), without;
    VectorSource s1(mk()), s2(mk());
    const auto rf = with.core.run(s1, 400);
    const auto rn = without.core.run(s2, 400);
    EXPECT_GT(rf.forwardedLoads, 150u);
    EXPECT_EQ(rn.forwardedLoads, 0u);
    EXPECT_LT(rf.cycles, rn.cycles);
    EXPECT_EQ(rf.loads, 200u);
    EXPECT_EQ(rf.stores, 200u);
}

TEST(OoOCore, ForwardingOnlyFromOlderStores)
{
    // A load *before* the store to the same address must not forward.
    std::vector<DynInst> s;
    DynInst ld;
    ld.seq = 0;
    ld.pc = 0x10000;
    ld.nextPc = ld.pc + 4;
    ld.inst.op = Opcode::Ld;
    ld.inst.rd = 2;
    ld.inst.rs1 = 1;
    ld.effAddr = 0x2000000;
    s.push_back(ld);
    DynInst st;
    st.seq = 1;
    st.pc = 0x10004;
    st.nextPc = st.pc + 4;
    st.inst.op = Opcode::Sd;
    st.inst.rs1 = 1;
    st.inst.rs2 = 9;
    st.effAddr = 0x2000000;
    s.push_back(st);
    CoreParams fwd;
    fwd.storeForwarding = true;
    TestMachine m(fwd);
    VectorSource src(s);
    const auto r = m.core.run(src, 2);
    EXPECT_EQ(r.forwardedLoads, 0u);
}

TEST(OoOCore, StallCounterspopulated)
{
    // Dependent-load chain: the ROB drains slowly, so dispatch stalls;
    // the single I-cache miss blocks fetch briefly.
    std::vector<DynInst> s;
    for (int i = 0; i < 300; ++i) {
        DynInst d;
        d.seq = i;
        d.pc = 0x10000 + 4 * (i % 16);
        d.nextPc = d.pc + 4;
        d.inst.op = Opcode::Ld;
        d.inst.rd = 1;
        d.inst.rs1 = 1;
        d.effAddr = 0x1000000 + i * 4096;
        s.push_back(d);
    }
    TestMachine m;
    VectorSource src(s);
    const auto r = m.core.run(src, s.size());
    EXPECT_GT(r.dispatchStallCycles, 100u);
    EXPECT_GT(r.fetchBlockedCycles, 0u);
    EXPECT_EQ(r.loads, 300u);
}

} // namespace
} // namespace rsr::uarch
