/**
 * @file
 * Tests for the serve subsystem, bottom up:
 *
 *   ServeProtocol — defensive frame/request codecs: fuzz-style negative
 *     paths (truncation at every boundary, bit flips, version skew,
 *     oversized lengths, trailing garbage) must throw CorruptInputError,
 *     never InternalError and never death.
 *   ServeCache    — byte-budgeted LRU semantics.
 *   ServeJournal  — crash-safe request journal: torn-line repair,
 *     hash-verified loads, backlog recovery.
 *   ServeNetIo    — deadline-capped socket I/O failure taxonomy
 *     (clean EOF vs torn frame vs slow loris vs injected tear).
 *   ServeDaemon   — a live in-process daemon: caching tiers, typed
 *     errors that leave it alive, backpressure, overload shedding,
 *     deadlines with retry, and drain/resume through the journal.
 *
 * ServeNetIo and ServeDaemon run in the integration tier (they bind
 * real sockets and wait on real timeouts); the rest are unit tier.
 */

#include <gtest/gtest.h>

#include <sys/socket.h>
#include <unistd.h>

#include <chrono>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <thread>
#include <vector>

#include "serve/cache.hh"
#include "serve/daemon.hh"
#include "serve/journal.hh"
#include "serve/net_io.hh"
#include "serve/protocol.hh"
#include "util/error.hh"
#include "util/fault.hh"

namespace rsr::serve
{
namespace
{

/** A small but real simulation request (sub-second on one core). */
SimRequest
tinyRequest(std::uint64_t seed = 0x5eed)
{
    SimRequest req;
    req.workload = "twolf";
    req.policy = "none";
    req.insts = 40'000;
    req.clusters = 2;
    req.clusterSize = 300;
    req.seed = seed;
    return req;
}

void
sleepMs(int ms)
{
    std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

// ---------------------------------------------------------------------
// ServeProtocol — codec round trips and fuzz-style negative paths.
// ---------------------------------------------------------------------

TEST(ServeProtocol, FrameRoundTrip)
{
    const Frame frame =
        textFrame(FrameType::SimResponse, 42, "{\"ipc\":1.5}");
    const Frame back = decodeFrame(encodeFrame(frame));
    EXPECT_EQ(back.type, FrameType::SimResponse);
    EXPECT_EQ(back.requestId, 42u);
    EXPECT_EQ(back.payloadText(), "{\"ipc\":1.5}");

    // Empty payload round-trips too.
    const Frame ping = decodeFrame(encodeFrame(Frame{}));
    EXPECT_EQ(ping.type, FrameType::Ping);
    EXPECT_TRUE(ping.payload.empty());
}

TEST(ServeProtocol, TruncationAtEveryBoundaryIsCorrupt)
{
    const auto bytes =
        encodeFrame(textFrame(FrameType::SimResponse, 7, "payload"));
    ASSERT_GT(bytes.size(), kHeaderBytes);
    for (std::size_t len = 0; len < bytes.size(); ++len) {
        const std::vector<std::uint8_t> prefix(bytes.begin(),
                                               bytes.begin() + len);
        EXPECT_THROW(decodeFrame(prefix), CorruptInputError)
            << "prefix of " << len << " bytes was accepted";
    }
}

TEST(ServeProtocol, EveryBitFlipIsDetected)
{
    // The checksum covers the header prefix and the payload, so a
    // single-bit flip anywhere in the frame — magic, version, type,
    // requestId, length, checksum itself, payload — must be caught.
    const Frame frame = textFrame(FrameType::SimResponse, 7, "payload");
    const auto bytes = encodeFrame(frame);
    for (std::size_t pos = 0; pos < bytes.size(); ++pos) {
        for (const std::uint8_t mask : {0x01, 0x80}) {
            auto damaged = bytes;
            damaged[pos] ^= mask;
            EXPECT_THROW(decodeFrame(damaged), CorruptInputError)
                << "flip at byte " << pos << " was accepted";
        }
    }
}

TEST(ServeProtocol, VersionSkewIsCorrupt)
{
    auto bytes = encodeFrame(Frame{});
    bytes[4] = kProtocolVersion + 1;
    EXPECT_THROW(decodeFrame(bytes), CorruptInputError);
}

TEST(ServeProtocol, OversizedLengthRejectedBeforeAllocation)
{
    // A hostile header advertising a 256 MiB payload must be rejected
    // by header validation alone — no allocation, no waiting for bytes.
    auto bytes = encodeFrame(Frame{});
    const std::uint32_t huge = kMaxPayload + 1;
    for (int i = 0; i < 4; ++i)
        bytes[16 + i] =
            static_cast<std::uint8_t>((huge >> (8 * i)) & 0xFF);
    EXPECT_THROW(validateHeader(bytes.data()), CorruptInputError);
    EXPECT_THROW(decodeFrame(bytes), CorruptInputError);
}

TEST(ServeProtocol, TrailingGarbageIsCorrupt)
{
    auto bytes = encodeFrame(textFrame(FrameType::Pong, 1, "ok"));
    bytes.push_back(0xAB);
    EXPECT_THROW(decodeFrame(bytes), CorruptInputError);
}

TEST(ServeProtocol, SimRequestRoundTripAndCanonicalOrder)
{
    SimRequest req = tinyRequest();
    req.machineKind = "paper";
    req.overrides = {"core.rob_size=64", "bp.tables=4096",
                     "core.width=2"};
    req.deadlineMs = 1500;
    const SimRequest back = decodeSimRequest(encodeSimRequest(req));
    EXPECT_EQ(back.workload, "twolf");
    EXPECT_EQ(back.machineKind, "paper");
    EXPECT_EQ(back.deadlineMs, 1500u);
    // encode canonicalizes: sorted override order survives the trip.
    const std::vector<std::string> want = {
        "bp.tables=4096", "core.rob_size=64", "core.width=2"};
    EXPECT_EQ(back.overrides, want);

    // Hashes are canonical-order-sensitive; both codecs canonicalize.
    SimRequest canon = req;
    canon.canonicalize();
    const SimRequest json_back = simRequestFromJson(simRequestJson(req));
    EXPECT_EQ(json_back.requestHash(), canon.requestHash());
    EXPECT_EQ(back.requestHash(), canon.requestHash());
}

TEST(ServeProtocol, RequestHashIgnoresDeadlineOnly)
{
    SimRequest a = tinyRequest();
    SimRequest b = a;
    b.deadlineMs = 9999;
    EXPECT_EQ(a.requestHash(), b.requestHash());

    SimRequest c = a;
    c.seed += 1;
    EXPECT_NE(a.requestHash(), c.requestHash());
}

TEST(ServeProtocol, CaptureHashSharedAcrossTimingOverrides)
{
    SimRequest base = tinyRequest();
    base.overrides = {"bp.tables=4096"};
    base.canonicalize();

    SimRequest timing = base;
    timing.overrides.push_back("core.rob_size=64");
    timing.canonicalize();

    // Different results, one shared capture.
    EXPECT_NE(base.requestHash(), timing.requestHash());
    EXPECT_EQ(base.captureHash(), timing.captureHash());

    SimRequest geometry = base;
    geometry.overrides.push_back("l1d.sets=128");
    geometry.canonicalize();
    EXPECT_NE(base.captureHash(), geometry.captureHash());

    const std::vector<std::string> timing_only = {"core.rob_size=64"};
    const std::vector<std::string> capture_only = {"bp.tables=4096"};
    EXPECT_EQ(timing.timingOverrides(), timing_only);
    EXPECT_EQ(timing.captureOverrides(), capture_only);
}

TEST(ServeProtocol, SimRequestPayloadFuzzNeverInternal)
{
    // Truncate a valid payload at every boundary, then throw seeded
    // garbage at the decoder: every rejection must be the typed
    // CorruptInputError (an InternalError would mean the decoder
    // trusted hostile bytes).
    const auto payload = encodeSimRequest(tinyRequest());
    for (std::size_t len = 0; len < payload.size(); ++len) {
        const std::vector<std::uint8_t> prefix(payload.begin(),
                                               payload.begin() + len);
        try {
            (void)decodeSimRequest(prefix);
        } catch (const CorruptInputError &) {
        }
    }

    std::uint64_t state = 0x5eed5eed5eed5eedull;
    const auto next = [&state]() {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        return static_cast<std::uint8_t>(state >> 56);
    };
    for (int round = 0; round < 200; ++round) {
        std::vector<std::uint8_t> garbage(next() % 96);
        for (auto &b : garbage)
            b = next();
        try {
            (void)decodeSimRequest(garbage);
        } catch (const CorruptInputError &) {
        }
        // Anything else (InternalError, bad_alloc, death) fails the test.
    }
}

// ---------------------------------------------------------------------
// ServeCache — byte-budgeted LRU.
// ---------------------------------------------------------------------

TEST(ServeCache, EvictsLeastRecentlyUsedWithinBudget)
{
    LruCache<std::string> cache(100);
    for (std::uint64_t k = 0; k < 4; ++k)
        cache.put(k, std::make_shared<const std::string>("v"), 30);
    // 4 * 30 > 100: key 0 (the oldest) was evicted.
    EXPECT_EQ(cache.entries(), 3u);
    EXPECT_EQ(cache.bytes(), 90u);
    EXPECT_EQ(cache.get(0), nullptr);
    ASSERT_NE(cache.get(1), nullptr);
}

TEST(ServeCache, GetRefreshesRecency)
{
    LruCache<std::string> cache(100);
    for (std::uint64_t k = 0; k < 3; ++k)
        cache.put(k, std::make_shared<const std::string>("v"), 30);
    ASSERT_NE(cache.get(0), nullptr); // key 0 is now most recent
    cache.put(3, std::make_shared<const std::string>("v"), 30);
    EXPECT_NE(cache.get(0), nullptr);
    EXPECT_EQ(cache.get(1), nullptr); // key 1 took the eviction instead
}

TEST(ServeCache, OversizedValueIsSkippedAndReplaceRecharges)
{
    LruCache<std::string> cache(100);
    cache.put(1, std::make_shared<const std::string>("huge"), 101);
    EXPECT_EQ(cache.entries(), 0u);
    EXPECT_EQ(cache.get(1), nullptr);

    cache.put(2, std::make_shared<const std::string>("a"), 40);
    cache.put(2, std::make_shared<const std::string>("b"), 60);
    EXPECT_EQ(cache.entries(), 1u);
    EXPECT_EQ(cache.bytes(), 60u);
    EXPECT_EQ(*cache.get(2), "b");
}

// ---------------------------------------------------------------------
// ServeJournal — crash-safe request journal.
// ---------------------------------------------------------------------

std::string
journalPath(const char *tag)
{
    const std::string path = std::string(::testing::TempDir()) +
                             "/rsr_serve_journal_" + tag + ".jsonl";
    std::remove(path.c_str());
    return path;
}

TEST(ServeJournal, BacklogKeepsOnlyUnfinishedRequests)
{
    const std::string path = journalPath("backlog");
    const SimRequest a = tinyRequest(1);
    const SimRequest b = tinyRequest(2);
    const SimRequest c = tinyRequest(3);
    {
        RequestJournal journal(path);
        journal.append(0, RequestStatus::Queued, a);
        journal.append(1, RequestStatus::Queued, b);
        journal.append(2, RequestStatus::Queued, c);
        journal.append(1, RequestStatus::Done, b);
        journal.append(2, RequestStatus::Failed, c);
    }
    const JournalState state = loadJournal(path);
    ASSERT_EQ(state.backlog.size(), 1u);
    EXPECT_EQ(state.backlog[0].first, 0u);
    EXPECT_EQ(state.backlog[0].second.requestHash(), a.requestHash());
    EXPECT_EQ(state.nextId, 3u);
    EXPECT_EQ(state.droppedLines, 0u);
}

TEST(ServeJournal, TornTrailingLineDroppedAndRepaired)
{
    const std::string path = journalPath("torn");
    {
        RequestJournal journal(path);
        journal.append(0, RequestStatus::Queued, tinyRequest(1));
        journal.append(0, RequestStatus::Done, tinyRequest(1));
        journal.append(1, RequestStatus::Queued, tinyRequest(2));
    }
    { // Crash mid-append: a torn, unterminated trailing line.
        std::ofstream out(path, std::ios::app);
        out << "{\"workload\":\"tw";
    }
    const JournalState state = loadJournal(path);
    EXPECT_EQ(state.droppedLines, 1u);
    ASSERT_EQ(state.backlog.size(), 1u);
    EXPECT_EQ(state.backlog[0].first, 1u);

    // Reopening for append repairs the tear so new lines stay parsable.
    {
        RequestJournal journal(path);
        journal.append(1, RequestStatus::Done, tinyRequest(2));
    }
    const JournalState repaired = loadJournal(path);
    EXPECT_EQ(repaired.droppedLines, 0u);
    EXPECT_TRUE(repaired.backlog.empty());
}

TEST(ServeJournal, HashMismatchLineIsDropped)
{
    const std::string path = journalPath("hash");
    {
        RequestJournal journal(path);
        journal.append(0, RequestStatus::Queued, tinyRequest(1));
    }
    // Flip the recorded workload: the stored request_hash no longer
    // matches the recomputed one, so the line is untrustworthy.
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    in.close();
    const auto at = line.find("twolf");
    ASSERT_NE(at, std::string::npos);
    line.replace(at, 5, "twolg");
    std::ofstream(path) << line << "\n";

    const JournalState state = loadJournal(path);
    EXPECT_TRUE(state.backlog.empty());
    EXPECT_EQ(state.droppedLines, 1u);
}

// ---------------------------------------------------------------------
// ServeNetIo — deadline-capped sockets and the failure taxonomy.
// Integration tier: binds real sockets, waits on real timeouts.
// ---------------------------------------------------------------------

/** A connected (client, server) socket pair on the loopback. */
struct LocalPair
{
    Socket listen;
    Socket client;
    Socket server;
};

LocalPair
makeLocalPair()
{
    LocalPair pair;
    std::uint16_t port = 0;
    pair.listen = listenOn(port);
    const Deadline deadline(10.0);
    pair.client = connectTo(port, deadline);
    EXPECT_EQ(waitAcceptable(pair.listen.fd(), -1, 5000),
              WaitResult::Acceptable);
    pair.server = acceptConnection(pair.listen.fd());
    EXPECT_TRUE(pair.server.valid());
    return pair;
}

TEST(ServeNetIo, FrameRoundTripOverSocket)
{
    LocalPair pair = makeLocalPair();
    const Deadline deadline(10.0);
    sendFrame(pair.client.fd(),
              textFrame(FrameType::SimRequest, 5, "hello"), deadline);
    Frame got;
    ASSERT_TRUE(recvFrame(pair.server.fd(), deadline, got));
    EXPECT_EQ(got.type, FrameType::SimRequest);
    EXPECT_EQ(got.requestId, 5u);
    EXPECT_EQ(got.payloadText(), "hello");
}

TEST(ServeNetIo, CleanEofReturnsFalse)
{
    LocalPair pair = makeLocalPair();
    pair.client.closeNow();
    Frame got;
    EXPECT_FALSE(recvFrame(pair.server.fd(), Deadline(5.0), got));
}

TEST(ServeNetIo, MidFrameHangupIsCorruptInput)
{
    LocalPair pair = makeLocalPair();
    const auto bytes = encodeFrame(Frame{});
    ASSERT_EQ(::send(pair.client.fd(), bytes.data(), 10, MSG_NOSIGNAL),
              10);
    pair.client.closeNow();
    Frame got;
    EXPECT_THROW(recvFrame(pair.server.fd(), Deadline(5.0), got),
                 CorruptInputError);
}

TEST(ServeNetIo, SlowLorisStallIsTimeout)
{
    LocalPair pair = makeLocalPair();
    const auto bytes = encodeFrame(Frame{});
    ASSERT_EQ(::send(pair.client.fd(), bytes.data(), 10, MSG_NOSIGNAL),
              10);
    // The peer stays connected but silent: a torn read would be wrong
    // (it may still resume), so this must be the retryable Timeout.
    Frame got;
    try {
        recvFrame(pair.server.fd(), Deadline(0.2), got);
        FAIL() << "stalled peer did not time out";
    } catch (const TimeoutError &e) {
        EXPECT_TRUE(e.retryable());
    }
}

TEST(ServeNetIo, InjectedTornFrameIsTypedAndCounted)
{
    LocalPair pair = makeLocalPair();
    const Deadline deadline(10.0);
    sendFrame(pair.client.fd(), textFrame(FrameType::Ping, 1, ""),
              deadline);
    FaultConfig faults;
    faults.seed = 0xfa057;
    faults.tornFrameProb = 1.0;
    const ScopedFaultInjection guard(faults);
    Frame got;
    EXPECT_THROW(recvFrame(pair.server.fd(), deadline, got),
                 CorruptInputError);
    EXPECT_GE(FaultInjector::global().stats().tornFrames, 1u);
}

// ---------------------------------------------------------------------
// ServeDaemon — a live in-process daemon on an ephemeral port.
// ---------------------------------------------------------------------

/** Runs a Server's serve() loop on a thread; drains on destruction. */
class DaemonHarness
{
  public:
    explicit DaemonHarness(ServeConfig config)
        : server_(std::move(config))
    {
        server_.start();
        thread_ = std::thread([this] { server_.serve(); });
    }

    ~DaemonHarness() { stop(); }

    void
    stop()
    {
        if (thread_.joinable()) {
            server_.requestDrain();
            thread_.join();
        }
    }

    Server &server() { return server_; }
    std::uint16_t port() const { return server_.port(); }

  private:
    Server server_;
    std::thread thread_;
};

ServeConfig
tinyDaemonConfig()
{
    ServeConfig config;
    config.port = 0;
    config.threads = 2;
    config.backoffMs = 1;
    return config;
}

/** One-shot client exchange: connect, send, read one reply frame. */
Frame
exchange(std::uint16_t port, const Frame &frame, double timeout = 30.0)
{
    const Deadline deadline(timeout);
    Socket conn = connectTo(port, deadline);
    sendFrame(conn.fd(), frame, deadline);
    Frame reply;
    if (!recvFrame(conn.fd(), deadline, reply))
        rsr_throw_io("daemon closed the connection without a reply");
    return reply;
}

Frame
exchangeRequest(std::uint16_t port, const SimRequest &request,
                std::uint64_t id = 1)
{
    Frame frame;
    frame.type = FrameType::SimRequest;
    frame.requestId = id;
    frame.payload = encodeSimRequest(request);
    return exchange(port, frame);
}

bool
payloadHas(const Frame &frame, const std::string &needle)
{
    return frame.payloadText().find(needle) != std::string::npos;
}

TEST(ServeDaemon, PingAndStatsRoundTrip)
{
    DaemonHarness daemon(tinyDaemonConfig());
    const Frame pong = exchange(daemon.port(), Frame{});
    EXPECT_EQ(pong.type, FrameType::Pong);

    Frame stats_req;
    stats_req.type = FrameType::StatsRequest;
    stats_req.requestId = 3;
    const Frame stats = exchange(daemon.port(), stats_req);
    EXPECT_EQ(stats.type, FrameType::StatsResponse);
    EXPECT_EQ(stats.requestId, 3u);
    EXPECT_TRUE(payloadHas(stats, "\"accepted\""));
    EXPECT_TRUE(payloadHas(stats, "\"draining\":false"));
}

TEST(ServeDaemon, ColdThenCachedThenWarmReplay)
{
    DaemonHarness daemon(tinyDaemonConfig());
    const SimRequest req = tinyRequest();

    const Frame cold = exchangeRequest(daemon.port(), req);
    ASSERT_EQ(cold.type, FrameType::SimResponse)
        << cold.payloadText();
    EXPECT_TRUE(payloadHas(cold, "\"cached\":false"));
    EXPECT_TRUE(payloadHas(cold, "\"warm\":false"));

    // Identical request: answered from the result cache.
    const Frame hit = exchangeRequest(daemon.port(), req);
    ASSERT_EQ(hit.type, FrameType::SimResponse);
    EXPECT_TRUE(payloadHas(hit, "\"cached\":true"));

    // Timing-only change: new result, but the capture is reused.
    SimRequest timing = req;
    timing.overrides = {"core.rob_size=64"};
    const Frame warm = exchangeRequest(daemon.port(), timing);
    ASSERT_EQ(warm.type, FrameType::SimResponse)
        << warm.payloadText();
    EXPECT_TRUE(payloadHas(warm, "\"warm\":true"));
    EXPECT_TRUE(payloadHas(warm, "\"cached\":false"));

    const ServeStats stats = daemon.server().stats();
    EXPECT_EQ(stats.coldCaptures, 1u);
    EXPECT_EQ(stats.cacheHits, 1u);
    EXPECT_EQ(stats.warmReplays, 1u);
    EXPECT_EQ(stats.completed, 3u); // every answered request counts
    EXPECT_EQ(stats.failed, 0u);
}

TEST(ServeDaemon, MalformedFramesGetTypedErrorsAndDaemonSurvives)
{
    DaemonHarness daemon(tinyDaemonConfig());
    const Deadline deadline(10.0);

    std::vector<std::vector<std::uint8_t>> attacks;
    { // Bad magic.
        auto bytes = encodeFrame(Frame{});
        bytes[0] ^= 0xFF;
        attacks.push_back(bytes);
    }
    { // Version skew.
        auto bytes = encodeFrame(Frame{});
        bytes[4] = kProtocolVersion + 1;
        attacks.push_back(bytes);
    }
    { // Oversized payload length: must be rejected from the header
      // alone, without waiting for a megabyte that will never arrive.
        auto bytes = encodeFrame(Frame{});
        const std::uint32_t huge = kMaxPayload + 1;
        for (int i = 0; i < 4; ++i)
            bytes[16 + i] =
                static_cast<std::uint8_t>((huge >> (8 * i)) & 0xFF);
        attacks.push_back(bytes);
    }
    { // Bit-flipped payload: checksum mismatch.
        auto bytes =
            encodeFrame(textFrame(FrameType::SimRequest, 9, "xx"));
        bytes[kHeaderBytes] ^= 0x01;
        attacks.push_back(bytes);
    }
    { // Valid frame, hostile payload: a SimRequest that is not one.
        attacks.push_back(
            encodeFrame(textFrame(FrameType::SimRequest, 9, "junk")));
    }

    for (const auto &attack : attacks) {
        Socket conn = connectTo(daemon.port(), deadline);
        ASSERT_EQ(::send(conn.fd(), attack.data(), attack.size(),
                         MSG_NOSIGNAL),
                  static_cast<long>(attack.size()));
        // Best effort: the daemon answers with a typed Error frame when
        // it still can, and always closes; it must never die.
        Frame reply;
        try {
            if (recvFrame(conn.fd(), deadline, reply)) {
                EXPECT_EQ(reply.type, FrameType::Error);
                EXPECT_TRUE(payloadHas(reply, "corrupt-input"));
            }
        } catch (const SimError &) {
        }
    }

    // Torn frame: half a header, then hangup.
    {
        Socket conn = connectTo(daemon.port(), deadline);
        const auto bytes = encodeFrame(Frame{});
        ASSERT_EQ(::send(conn.fd(), bytes.data(), 10, MSG_NOSIGNAL),
                  10);
    }
    sleepMs(50);

    // Still alive, and every attack was counted as a protocol error.
    const Frame pong = exchange(daemon.port(), Frame{});
    EXPECT_EQ(pong.type, FrameType::Pong);
    EXPECT_GE(daemon.server().stats().protocolErrors, attacks.size());
    EXPECT_EQ(daemon.server().stats().failed, 0u);
}

TEST(ServeDaemon, SlowLorisCostsOneIoDeadlineThenTypedTimeout)
{
    ServeConfig config = tinyDaemonConfig();
    config.ioDeadlineSec = 0.2;
    DaemonHarness daemon(config);

    const Deadline deadline(10.0);
    Socket conn = connectTo(daemon.port(), deadline);
    const auto bytes = encodeFrame(Frame{});
    ASSERT_EQ(::send(conn.fd(), bytes.data(), 10, MSG_NOSIGNAL), 10);
    // Stay connected and silent: the worker must give up after
    // ioDeadlineSec and answer with the retryable timeout error.
    Frame reply;
    ASSERT_TRUE(recvFrame(conn.fd(), Deadline(5.0), reply));
    EXPECT_EQ(reply.type, FrameType::Error);
    EXPECT_TRUE(payloadHas(reply, "timeout"));
    EXPECT_TRUE(payloadHas(reply, "\"retryable\":true"));
    EXPECT_GE(daemon.server().stats().deadlineExceeded, 1u);

    const Frame pong = exchange(daemon.port(), Frame{});
    EXPECT_EQ(pong.type, FrameType::Pong);
}

TEST(ServeDaemon, FullQueueAnswersBusyWithRetryHint)
{
    ServeConfig config = tinyDaemonConfig();
    config.threads = 1;
    config.queueCapacity = 1;
    config.ioDeadlineSec = 5.0;
    DaemonHarness daemon(config);

    // Occupy the single slot with a silent connection, ...
    const Deadline deadline(10.0);
    Socket occupier = connectTo(daemon.port(), deadline);
    sleepMs(200);

    // ... so the next connection is refused at the door.
    Socket refused = connectTo(daemon.port(), deadline);
    Frame reply;
    ASSERT_TRUE(recvFrame(refused.fd(), Deadline(5.0), reply));
    EXPECT_EQ(reply.type, FrameType::Busy);
    EXPECT_TRUE(payloadHas(reply, "retry_after_ms"));
    EXPECT_TRUE(payloadHas(reply, "\"shed\":\"queue-full\""));
    EXPECT_GE(daemon.server().stats().shedBusy, 1u);

    occupier.closeNow();
}

TEST(ServeDaemon, OverloadShedsColdButServesCacheHits)
{
    ServeConfig config = tinyDaemonConfig();
    config.threads = 4;
    config.queueCapacity = 8;
    config.shedFillFraction = 0.25; // shed mark: depth 2
    DaemonHarness daemon(config);

    // Warm the result cache while the daemon is idle.
    const SimRequest req = tinyRequest();
    ASSERT_EQ(exchangeRequest(daemon.port(), req).type,
              FrameType::SimResponse);

    // Two silent connections push the depth to the shed mark.
    const Deadline deadline(10.0);
    Socket loris_a = connectTo(daemon.port(), deadline);
    Socket loris_b = connectTo(daemon.port(), deadline);
    sleepMs(200);

    // Cache hits keep flowing under overload...
    const Frame hit = exchangeRequest(daemon.port(), req);
    ASSERT_EQ(hit.type, FrameType::SimResponse);
    EXPECT_TRUE(payloadHas(hit, "\"cached\":true"));

    // ...while fresh capture work is shed first.
    const Frame shed =
        exchangeRequest(daemon.port(), tinyRequest(0xc01d));
    EXPECT_EQ(shed.type, FrameType::Busy);
    EXPECT_TRUE(payloadHas(shed, "\"shed\":\"overload-cold\""));
    EXPECT_GE(daemon.server().stats().shedOverload, 1u);

    loris_a.closeNow();
    loris_b.closeNow();
}

TEST(ServeDaemon, RequestDeadlineRetriesThenTypedTimeout)
{
    ServeConfig config = tinyDaemonConfig();
    config.maxRetries = 1;
    DaemonHarness daemon(config);

    // Big enough that the watchdog fires at a poll point well before
    // the run can finish (a truly tiny run completes inside 1 ms).
    SimRequest req = tinyRequest();
    req.insts = 600'000;
    req.clusters = 6;
    req.clusterSize = 2000;
    req.deadlineMs = 1;
    const Frame reply = exchangeRequest(daemon.port(), req);
    EXPECT_EQ(reply.type, FrameType::Error);
    EXPECT_TRUE(payloadHas(reply, "timeout"));

    const ServeStats stats = daemon.server().stats();
    EXPECT_GE(stats.retries, 1u); // transient → one backoff retry
    EXPECT_GE(stats.deadlineExceeded, 1u);
    EXPECT_GE(stats.failed, 1u);

    // A wedged request must not poison the daemon.
    EXPECT_EQ(exchange(daemon.port(), Frame{}).type, FrameType::Pong);
}

TEST(ServeDaemon, UnknownWorkloadIsTypedUserErrorNotDeath)
{
    DaemonHarness daemon(tinyDaemonConfig());
    SimRequest req = tinyRequest();
    req.workload = "bogus";
    const Frame reply = exchangeRequest(daemon.port(), req);
    EXPECT_EQ(reply.type, FrameType::Error);
    EXPECT_TRUE(payloadHas(reply, "user-error"));
    EXPECT_TRUE(payloadHas(reply, "\"retryable\":false"));
    EXPECT_EQ(exchange(daemon.port(), Frame{}).type, FrameType::Pong);
}

TEST(ServeDaemon, DrainFrameStopsServeLoopAndJournalResumeWarmsCache)
{
    const std::string path = journalPath("daemon_resume");
    const SimRequest req = tinyRequest(0xd7a1);

    // A previous daemon generation crashed (or was drained) with this
    // request admitted but unfinished.
    {
        RequestJournal journal(path);
        journal.append(0, RequestStatus::Queued, req);
    }

    ServeConfig config = tinyDaemonConfig();
    config.journalPath = path;
    DaemonHarness daemon(config);

    // The restarted daemon replays the backlog into its result cache.
    bool resumed = false;
    for (int spin = 0; spin < 300 && !resumed; ++spin) {
        const ServeStats stats = daemon.server().stats();
        resumed = stats.journalResumed >= 1 && stats.completed >= 1;
        if (!resumed)
            sleepMs(100);
    }
    ASSERT_TRUE(resumed) << "journal backlog was not resumed";

    const Frame hit = exchangeRequest(daemon.port(), req);
    ASSERT_EQ(hit.type, FrameType::SimResponse);
    EXPECT_TRUE(payloadHas(hit, "\"cached\":true"));

    // The resumed request was retired in the journal.
    EXPECT_TRUE(loadJournal(path).backlog.empty());

    // A Drain frame acks, then the serve loop exits on its own.
    Frame drain;
    drain.type = FrameType::Drain;
    drain.requestId = 99;
    const Frame ack = exchange(daemon.port(), drain);
    EXPECT_EQ(ack.type, FrameType::Ack);
    daemon.stop();
    EXPECT_TRUE(daemon.server().stats().draining);
}

TEST(ServeDaemon, WakePipeByteInitiatesDrain)
{
    // The exact path a SIGTERM handler takes: one async-signal-safe
    // write to the wake pipe.
    DaemonHarness daemon(tinyDaemonConfig());
    ASSERT_EQ(exchange(daemon.port(), Frame{}).type, FrameType::Pong);
    notifyWakePipe(daemon.server().wakeFd());
    daemon.stop(); // joins promptly because the loop saw the wake byte
    EXPECT_TRUE(daemon.server().stats().draining);
}

TEST(ServeDaemon, SurvivesSeededProtocolFaultStorm)
{
    // Torn-frame injection armed inside the daemon: some exchanges
    // fail with typed errors (on either side — the injector is
    // process-wide), but the daemon itself must survive the storm and
    // still answer cleanly once the faults are disarmed.
    ServeConfig config = tinyDaemonConfig();
    config.faults.seed = 0x5708;
    config.faults.tornFrameProb = 0.4;
    std::uint64_t served = 0;
    {
        DaemonHarness daemon(config);
        for (int round = 0; round < 20; ++round) {
            try {
                const Frame reply = exchange(daemon.port(), Frame{});
                if (reply.type == FrameType::Pong)
                    ++served;
            } catch (const SimError &) {
                // Typed failure — acceptable under injected faults.
            }
        }
        EXPECT_GE(FaultInjector::global().stats().tornFrames, 1u);
        daemon.stop();
        EXPECT_TRUE(daemon.server().stats().draining);
    }
    // Faults disarm with the daemon; the storm never killed anything.
    EXPECT_FALSE(FaultInjector::global().armed());
    EXPECT_GE(served, 1u);
}

} // namespace
} // namespace rsr::serve
