/**
 * @file
 * Robustness tests: multi-seed statistical stability of sampled
 * estimates, short-log GHR reconstruction, bimodal predictor mode
 * (zero history bits), SimPoint parameter boundaries, degenerate
 * cache geometries, and the fault-tolerance layer — truncated and
 * bit-flipped artifacts, fault-injected campaigns, watchdog timeouts,
 * and the campaign kill-and-resume round trip.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <csignal>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include <sys/wait.h>
#include <unistd.h>

#include "core/branch_reconstructor.hh"
#include "core/livepoint_store.hh"
#include "core/sampled_sim.hh"
#include "core/warmup.hh"
#include "harness/campaign.hh"
#include "harness/manifest.hh"
#include "simpoint/simpoint.hh"
#include "trace/trace.hh"
#include "util/error.hh"
#include "util/fault.hh"
#include "workload/synthetic.hh"

namespace rsr
{
namespace
{

std::vector<std::uint8_t>
slurpFile(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "rb");
    EXPECT_NE(f, nullptr) << path;
    std::vector<std::uint8_t> bytes;
    std::uint8_t buf[4096];
    std::size_t n;
    while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0)
        bytes.insert(bytes.end(), buf, buf + n);
    std::fclose(f);
    return bytes;
}

void
spillFile(const std::string &path, const std::vector<std::uint8_t> &bytes)
{
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr) << path;
    std::fwrite(bytes.data(), 1, bytes.size(), f);
    std::fclose(f);
}

/** A small, fast campaign config rooted at a fresh temp directory. */
harness::CampaignConfig
smallCampaign(const char *tag)
{
    harness::CampaignConfig cfg;
    cfg.outDir = std::string(::testing::TempDir()) + "/rsr_campaign_" + tag;
    cfg.workloads = {"twolf", "vpr", "gcc"};
    cfg.policies = {"none", "smarts"};
    cfg.insts = 60'000;
    cfg.clusters = 3;
    cfg.clusterSize = 500;
    cfg.machine = core::MachineConfig::scaledDefault();
    cfg.threads = 1;
    cfg.maxRetries = 0;
    cfg.backoffMs = 1;
    // Fresh manifest regardless of leftovers from a previous test run.
    std::remove(harness::CampaignRunner::manifestPath(cfg.outDir).c_str());
    return cfg;
}

TEST(Robustness, EstimatesStableAcrossScheduleSeeds)
{
    // Different cluster placements: SMARTS estimates should scatter
    // around a common value, each within a loose band of the pooled mean.
    const auto prog = workload::buildSynthetic(
        workload::standardWorkloadParams("vpr"));
    core::SampledConfig cfg;
    cfg.totalInsts = 600'000;
    cfg.regimen = {20, 2000};
    cfg.machine = core::MachineConfig::scaledDefault();

    std::vector<double> means;
    for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
        cfg.scheduleSeed = seed;
        auto smarts = core::FunctionalWarmup::smarts();
        means.push_back(
            core::runSampled(prog, *smarts, cfg).estimate.mean);
    }
    const double pooled = core::mean(means);
    for (double m : means)
        EXPECT_LT(std::fabs(m - pooled) / pooled, 0.15);
}

TEST(Robustness, GhrReconstructionWithShortLog)
{
    // Fewer logged conditionals than history bits: the reconstructed GHR
    // must combine the pre-skip GHR with the few logged outcomes.
    branch::PredictorParams pp;
    pp.phtEntries = 256;
    pp.historyBits = 8;
    pp.btbEntries = 16;
    pp.rasEntries = 4;
    branch::GsharePredictor truth(pp), rsr(pp);

    truth.setGhr(0b10110011);
    core::SkipLog log;
    log.ghrAtStart = 0b10110011;
    for (bool taken : {true, false, true}) {
        truth.warmApply(0x100, isa::BranchKind::Conditional, taken, 0x200);
        log.branches.push_back(
            {0x100, 0x200, isa::BranchKind::Conditional, taken});
    }
    core::BranchReconstructor recon(rsr);
    recon.begin(log);
    EXPECT_EQ(rsr.ghr(), truth.ghr());
    recon.end();
}

TEST(Robustness, ZeroHistoryBitsIsBimodal)
{
    // historyBits = 0 degenerates gshare into a per-PC bimodal table:
    // indices ignore outcomes entirely.
    branch::PredictorParams pp;
    pp.phtEntries = 256;
    pp.historyBits = 0;
    pp.btbEntries = 16;
    pp.rasEntries = 4;
    branch::GsharePredictor bp(pp);
    const auto idx_before = bp.phtIndex(0x1230);
    for (int i = 0; i < 10; ++i)
        bp.update(0x1230, isa::BranchKind::Conditional, (i % 2) == 0,
                  0x2000);
    EXPECT_EQ(bp.ghr(), 0u);
    EXPECT_EQ(bp.phtIndex(0x1230), idx_before);
    // Distinct PCs map to distinct entries (no history xor).
    EXPECT_NE(bp.phtIndex(0x1230), bp.phtIndex(0x1234));
}

TEST(Robustness, BimodalSampledRunWorksEndToEnd)
{
    const auto prog = workload::buildSynthetic(
        workload::standardWorkloadParams("twolf"));
    core::SampledConfig cfg;
    cfg.totalInsts = 300'000;
    cfg.regimen = {10, 2000};
    cfg.machine = core::MachineConfig::scaledDefault();
    cfg.machine.bp.historyBits = 0;
    auto rsr = core::ReverseReconstructionWarmup::full(0.2);
    const auto r = core::runSampled(prog, *rsr, cfg);
    EXPECT_EQ(r.clusterIpc.size(), 10u);
    EXPECT_GT(r.estimate.mean, 0.0);
}

TEST(Robustness, SimPointMaxKOne)
{
    const auto prog = workload::buildSynthetic(
        workload::standardWorkloadParams("twolf"));
    simpoint::SimPointConfig cfg;
    cfg.intervalSize = 2000;
    cfg.maxK = 1;
    const auto sel = simpoint::pickSimPoints(prog, 100'000, cfg);
    EXPECT_EQ(sel.k, 1u);
    EXPECT_DOUBLE_EQ(sel.weights[0], 1.0);
}

TEST(Robustness, SimPointBicThresholdExtremes)
{
    const auto prog = workload::buildSynthetic(
        workload::standardWorkloadParams("gcc"));
    simpoint::SimPointConfig low;
    low.intervalSize = 2000;
    low.maxK = 12;
    low.bicThreshold = 0.0; // accept the first (smallest) k
    const auto sel_low = simpoint::pickSimPoints(prog, 150'000, low);

    simpoint::SimPointConfig high = low;
    high.bicThreshold = 1.0; // demand the best score
    const auto sel_high = simpoint::pickSimPoints(prog, 150'000, high);
    EXPECT_LE(sel_low.k, sel_high.k);
}

TEST(Robustness, SingleSetCacheReconstruction)
{
    // Degenerate geometry: one set, fully associative behaviour.
    cache::CacheParams p;
    p.sizeBytes = 64 * 8;
    p.assoc = 8;
    p.lineBytes = 64;
    p.writePolicy = cache::WritePolicy::WriteThroughNoAllocate;
    cache::Cache fwd(p), rev(p);
    std::vector<std::uint64_t> stream;
    for (int i = 0; i < 100; ++i)
        stream.push_back((i * 7 % 20) * 64);
    for (auto a : stream)
        fwd.access(a, false);
    rev.beginReconstruction();
    for (auto it = stream.rbegin(); it != stream.rend(); ++it)
        rev.reconstructRef(*it);
    for (std::uint64_t line = 0; line < 20; ++line)
        EXPECT_EQ(fwd.recencyOf(line * 64), rev.recencyOf(line * 64));
}

TEST(Robustness, DirectMappedWholeHierarchy)
{
    // Assoc-1 everywhere still runs a full sampled simulation.
    const auto prog = workload::buildSynthetic(
        workload::standardWorkloadParams("twolf"));
    core::SampledConfig cfg;
    cfg.totalInsts = 200'000;
    cfg.regimen = {8, 1500};
    cfg.machine = core::MachineConfig::scaledDefault();
    cfg.machine.hier.il1.assoc = 1;
    cfg.machine.hier.dl1.assoc = 1;
    cfg.machine.hier.l2.assoc = 1;
    auto rsr = core::ReverseReconstructionWarmup::full(1.0);
    const auto r = core::runSampled(prog, *rsr, cfg);
    EXPECT_EQ(r.clusterIpc.size(), 8u);
}

TEST(Robustness, TruncatedTraceThrowsCorruptInput)
{
    const auto prog = workload::buildSynthetic(
        workload::standardWorkloadParams("twolf"));
    const std::string path =
        std::string(::testing::TempDir()) + "/rsr_trunc.trc";
    ASSERT_EQ(trace::recordTrace(prog, 5'000, path), 5'000u);

    auto bytes = slurpFile(path);
    ASSERT_GT(bytes.size(), 64u);
    bytes.resize(bytes.size() - 16); // tear the tail off the payload
    spillFile(path, bytes);

    EXPECT_THROW(trace::TraceReader reader(path), CorruptInputError);
    std::remove(path.c_str());
}

/** Capture a tiny live-point store and save it under TempDir. */
std::string
savedSmallStore(const char *tag)
{
    const auto prog = workload::buildSynthetic(
        workload::standardWorkloadParams("twolf"));
    core::SampledConfig cfg;
    cfg.totalInsts = 60'000;
    cfg.regimen = {3, 500};
    cfg.machine = core::MachineConfig::scaledDefault();
    auto smarts = core::FunctionalWarmup::smarts();
    const auto store = core::LivePointStore::create(prog, *smarts, cfg,
                                                    "twolf", "smarts");
    const std::string path = std::string(::testing::TempDir()) +
                             "/rsr_store_" + tag + ".lvpt";
    store.saveFile(path);
    return path;
}

TEST(Robustness, BitFlippedLivePointStoreThrowsCorruptInput)
{
    const std::string path = savedSmallStore("flip");

    // Sanity: the pristine file loads and replays.
    EXPECT_NO_THROW(core::LivePointStore::loadFile(path).replay());

    const auto pristine = slurpFile(path);
    ASSERT_GT(pristine.size(), 64u);
    // A flip anywhere — index metadata, a blob header, blob payload —
    // must be refused at load; damaged state is never silently replayed.
    for (std::size_t pos : {std::size_t{9}, pristine.size() / 3,
                            pristine.size() / 2, pristine.size() - 2}) {
        auto bytes = pristine;
        bytes[pos] ^= 0x10;
        spillFile(path, bytes);
        EXPECT_THROW(core::LivePointStore::loadFile(path),
                     CorruptInputError)
            << "flip at " << pos;
    }
    std::remove(path.c_str());
}

TEST(Robustness, TruncatedLivePointStoreThrowsCorruptInput)
{
    const std::string path = savedSmallStore("trunc");
    auto bytes = slurpFile(path);
    ASSERT_GT(bytes.size(), 64u);
    // Torn at the header, inside the index, and near the tail.
    for (std::size_t keep : {std::size_t{10}, std::size_t{40},
                             bytes.size() - 16}) {
        auto torn = bytes;
        torn.resize(keep);
        spillFile(path, torn);
        EXPECT_THROW(core::LivePointStore::loadFile(path),
                     CorruptInputError)
            << "truncated to " << keep;
    }
    std::remove(path.c_str());
}

TEST(Robustness, VersionSkewedLivePointStoreIsRejected)
{
    const std::string path = savedSmallStore("skew");
    auto bytes = slurpFile(path);
    bytes[4] += 1; // container version word (follows the 'RSRS' magic)
    spillFile(path, bytes);
    try {
        core::LivePointStore::loadFile(path);
        FAIL() << "version-skewed store accepted";
    } catch (const CorruptInputError &e) {
        // The message must name the version mismatch so a user knows to
        // recapture rather than suspect disk corruption.
        EXPECT_NE(std::string(e.what()).find("version"),
                  std::string::npos)
            << e.what();
    }
    std::remove(path.c_str());
}

TEST(Robustness, FaultInjectedLivePointLoadFailsTyped)
{
    const std::string path = savedSmallStore("fault");

    // Injected I/O failure: the read itself fails with the retryable
    // IoError, not a crash or a half-parsed store.
    {
        FaultConfig fc;
        fc.seed = 7;
        fc.ioFailProb = 1.0;
        ScopedFaultInjection guard(fc);
        EXPECT_THROW(core::LivePointStore::loadFile(path), IoError);
    }

    // Injected payload corruption: caught by the container's checksums.
    {
        FaultConfig fc;
        fc.seed = 7;
        fc.corruptProb = 1.0;
        ScopedFaultInjection guard(fc);
        EXPECT_THROW(core::LivePointStore::loadFile(path),
                     CorruptInputError);
    }

    // Disarmed again: the pristine file still loads.
    EXPECT_NO_THROW(core::LivePointStore::loadFile(path));
    std::remove(path.c_str());
}

TEST(Robustness, FaultInjectedCampaignRecordsFailuresThenResumes)
{
    auto cfg = smallCampaign("faulty");
    cfg.faults.seed = 0xfa017;
    cfg.faults.ioFailProb = 0.7; // most result writes fail, no retries

    harness::CampaignRunner first(cfg);
    const auto r1 = first.run();
    EXPECT_EQ(r1.total, 6u);
    EXPECT_GT(r1.failed, 0u);
    EXPECT_FALSE(r1.allComplete());
    EXPECT_EQ(r1.exitStatus(), 2);

    // Every failure is in the manifest with the io taxonomy kind.
    const auto state = harness::loadManifest(
        harness::CampaignRunner::manifestPath(cfg.outDir));
    std::uint64_t manifest_failed = 0;
    for (const auto &[id, job] : state.jobs) {
        if (job.status == harness::JobStatus::Failed) {
            ++manifest_failed;
            EXPECT_EQ(job.errorKind, "io") << id;
            EXPECT_FALSE(job.error.empty()) << id;
        }
    }
    EXPECT_EQ(manifest_failed, r1.failed);

    // Resume with faults off: completed jobs are skipped, the rest run.
    cfg.faults = FaultConfig{};
    harness::CampaignRunner second(cfg);
    const auto r2 = second.run(/*resume=*/true);
    EXPECT_EQ(r2.skipped, r1.completed);
    EXPECT_TRUE(r2.allComplete());
    EXPECT_EQ(r2.exitStatus(), 0);
}

TEST(Robustness, WatchdogTimesOutSlowJobs)
{
    auto cfg = smallCampaign("timeout");
    cfg.workloads = {"twolf"};
    cfg.policies = {"none"};
    cfg.jobTimeoutSec = 1e-6; // expires before the first cluster

    harness::CampaignRunner runner(cfg);
    const auto r = runner.run();
    EXPECT_EQ(r.total, 1u);
    EXPECT_EQ(r.failed, 1u);

    const auto state = harness::loadManifest(
        harness::CampaignRunner::manifestPath(cfg.outDir));
    ASSERT_EQ(state.jobs.count(0), 1u);
    EXPECT_EQ(state.jobs.at(0).status, harness::JobStatus::TimedOut);
    EXPECT_EQ(state.jobs.at(0).errorKind, "timeout");
}

TEST(Robustness, CampaignKillAndResumeRoundTrip)
{
    const auto cfg = smallCampaign("killresume");
    const auto manifest =
        harness::CampaignRunner::manifestPath(cfg.outDir);

    const pid_t child = fork();
    ASSERT_GE(child, 0);
    if (child == 0) {
        // Child: run the campaign to completion (it won't get to).
        try {
            harness::CampaignRunner runner(cfg);
            runner.run();
        } catch (...) {
        }
        _exit(0);
    }

    // Parent: wait until at least one job is durably complete, then
    // SIGKILL the child mid-campaign.
    bool saw_complete = false;
    for (int i = 0; i < 3000 && !saw_complete; ++i) {
        usleep(10'000);
        try {
            const auto state = harness::loadManifest(manifest);
            for (const auto &[id, job] : state.jobs)
                if (job.status == harness::JobStatus::Complete)
                    saw_complete = true;
        } catch (const SimError &) {
            // Manifest not there yet or header still in flight.
        }
    }
    kill(child, SIGKILL);
    int wstatus = 0;
    waitpid(child, &wstatus, 0);
    ASSERT_TRUE(saw_complete) << "child never completed a job";

    // Resume: completed jobs must be skipped, the rest must finish.
    harness::CampaignRunner resumed(cfg);
    const auto r = resumed.run(/*resume=*/true);
    EXPECT_GE(r.skipped, 1u);
    EXPECT_TRUE(r.allComplete());
    EXPECT_EQ(r.completed + r.skipped, r.total);
    EXPECT_EQ(r.exitStatus(), 0);
}

TEST(Robustness, CampaignStopFlagLeavesResumableManifest)
{
    // The SIGINT/SIGTERM path without the signal: a raised stop flag
    // halts dispatch before any new job starts, the manifest stays
    // durable, and a later resume finishes exactly the stopped work.
    auto cfg = smallCampaign("stopflag");
    std::atomic<bool> stop{true}; // raised before the first dispatch
    cfg.stopFlag = &stop;

    harness::CampaignRunner stopped(cfg);
    const auto r1 = stopped.run();
    EXPECT_EQ(r1.total, 6u);
    EXPECT_EQ(r1.stopped, 6u);
    EXPECT_EQ(r1.completed, 0u);
    EXPECT_FALSE(r1.allComplete());
    EXPECT_EQ(r1.exitStatus(), 2); // incomplete, by design

    // Stopped jobs left no manifest entries: nothing half-recorded.
    const auto state = harness::loadManifest(
        harness::CampaignRunner::manifestPath(cfg.outDir));
    for (const auto &[id, job] : state.jobs)
        EXPECT_NE(job.status, harness::JobStatus::Complete);

    // Lower the flag and resume: every stopped job runs to completion.
    stop.store(false);
    harness::CampaignRunner resumed(cfg);
    const auto r2 = resumed.run(/*resume=*/true);
    EXPECT_TRUE(r2.allComplete());
    EXPECT_EQ(r2.stopped, 0u);
    EXPECT_EQ(r2.exitStatus(), 0);
}

TEST(Robustness, ResumeRejectsMismatchedCampaign)
{
    auto cfg = smallCampaign("fingerprint");
    cfg.workloads = {"twolf"};
    cfg.policies = {"none"};
    harness::CampaignRunner first(cfg);
    EXPECT_TRUE(first.run().allComplete());

    auto other = cfg;
    other.policies = {"smarts"}; // different matrix, same directory
    harness::CampaignRunner second(other);
    EXPECT_THROW(second.run(/*resume=*/true), UserError);
}

TEST(Robustness, FaultInjectorIsDeterministicPerSeed)
{
    FaultConfig fc;
    fc.seed = 42;
    fc.ioFailProb = 0.5;
    std::vector<bool> a, b;
    {
        ScopedFaultInjection guard(fc);
        for (int i = 0; i < 64; ++i)
            a.push_back(FaultInjector::global().shouldFailIo("site:x"));
    }
    {
        ScopedFaultInjection guard(fc);
        for (int i = 0; i < 64; ++i)
            b.push_back(FaultInjector::global().shouldFailIo("site:x"));
    }
    EXPECT_EQ(a, b);
    EXPECT_NE(std::count(a.begin(), a.end(), true), 0);
    EXPECT_NE(std::count(a.begin(), a.end(), false), 0);
}

} // namespace
} // namespace rsr
