/**
 * @file
 * Robustness tests: multi-seed statistical stability of sampled
 * estimates, short-log GHR reconstruction, bimodal predictor mode
 * (zero history bits), SimPoint parameter boundaries, and degenerate
 * cache geometries.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/branch_reconstructor.hh"
#include "core/sampled_sim.hh"
#include "core/warmup.hh"
#include "simpoint/simpoint.hh"
#include "workload/synthetic.hh"

namespace rsr
{
namespace
{

TEST(Robustness, EstimatesStableAcrossScheduleSeeds)
{
    // Different cluster placements: SMARTS estimates should scatter
    // around a common value, each within a loose band of the pooled mean.
    const auto prog = workload::buildSynthetic(
        workload::standardWorkloadParams("vpr"));
    core::SampledConfig cfg;
    cfg.totalInsts = 600'000;
    cfg.regimen = {20, 2000};
    cfg.machine = core::MachineConfig::scaledDefault();

    std::vector<double> means;
    for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull}) {
        cfg.scheduleSeed = seed;
        auto smarts = core::FunctionalWarmup::smarts();
        means.push_back(
            core::runSampled(prog, *smarts, cfg).estimate.mean);
    }
    const double pooled = core::mean(means);
    for (double m : means)
        EXPECT_LT(std::fabs(m - pooled) / pooled, 0.15);
}

TEST(Robustness, GhrReconstructionWithShortLog)
{
    // Fewer logged conditionals than history bits: the reconstructed GHR
    // must combine the pre-skip GHR with the few logged outcomes.
    branch::PredictorParams pp;
    pp.phtEntries = 256;
    pp.historyBits = 8;
    pp.btbEntries = 16;
    pp.rasEntries = 4;
    branch::GsharePredictor truth(pp), rsr(pp);

    truth.setGhr(0b10110011);
    core::SkipLog log;
    log.ghrAtStart = 0b10110011;
    for (bool taken : {true, false, true}) {
        truth.warmApply(0x100, isa::BranchKind::Conditional, taken, 0x200);
        log.branches.push_back(
            {0x100, 0x200, isa::BranchKind::Conditional, taken});
    }
    core::BranchReconstructor recon(rsr);
    recon.begin(log);
    EXPECT_EQ(rsr.ghr(), truth.ghr());
    recon.end();
}

TEST(Robustness, ZeroHistoryBitsIsBimodal)
{
    // historyBits = 0 degenerates gshare into a per-PC bimodal table:
    // indices ignore outcomes entirely.
    branch::PredictorParams pp;
    pp.phtEntries = 256;
    pp.historyBits = 0;
    pp.btbEntries = 16;
    pp.rasEntries = 4;
    branch::GsharePredictor bp(pp);
    const auto idx_before = bp.phtIndex(0x1230);
    for (int i = 0; i < 10; ++i)
        bp.update(0x1230, isa::BranchKind::Conditional, (i % 2) == 0,
                  0x2000);
    EXPECT_EQ(bp.ghr(), 0u);
    EXPECT_EQ(bp.phtIndex(0x1230), idx_before);
    // Distinct PCs map to distinct entries (no history xor).
    EXPECT_NE(bp.phtIndex(0x1230), bp.phtIndex(0x1234));
}

TEST(Robustness, BimodalSampledRunWorksEndToEnd)
{
    const auto prog = workload::buildSynthetic(
        workload::standardWorkloadParams("twolf"));
    core::SampledConfig cfg;
    cfg.totalInsts = 300'000;
    cfg.regimen = {10, 2000};
    cfg.machine = core::MachineConfig::scaledDefault();
    cfg.machine.bp.historyBits = 0;
    auto rsr = core::ReverseReconstructionWarmup::full(0.2);
    const auto r = core::runSampled(prog, *rsr, cfg);
    EXPECT_EQ(r.clusterIpc.size(), 10u);
    EXPECT_GT(r.estimate.mean, 0.0);
}

TEST(Robustness, SimPointMaxKOne)
{
    const auto prog = workload::buildSynthetic(
        workload::standardWorkloadParams("twolf"));
    simpoint::SimPointConfig cfg;
    cfg.intervalSize = 2000;
    cfg.maxK = 1;
    const auto sel = simpoint::pickSimPoints(prog, 100'000, cfg);
    EXPECT_EQ(sel.k, 1u);
    EXPECT_DOUBLE_EQ(sel.weights[0], 1.0);
}

TEST(Robustness, SimPointBicThresholdExtremes)
{
    const auto prog = workload::buildSynthetic(
        workload::standardWorkloadParams("gcc"));
    simpoint::SimPointConfig low;
    low.intervalSize = 2000;
    low.maxK = 12;
    low.bicThreshold = 0.0; // accept the first (smallest) k
    const auto sel_low = simpoint::pickSimPoints(prog, 150'000, low);

    simpoint::SimPointConfig high = low;
    high.bicThreshold = 1.0; // demand the best score
    const auto sel_high = simpoint::pickSimPoints(prog, 150'000, high);
    EXPECT_LE(sel_low.k, sel_high.k);
}

TEST(Robustness, SingleSetCacheReconstruction)
{
    // Degenerate geometry: one set, fully associative behaviour.
    cache::CacheParams p;
    p.sizeBytes = 64 * 8;
    p.assoc = 8;
    p.lineBytes = 64;
    p.writePolicy = cache::WritePolicy::WriteThroughNoAllocate;
    cache::Cache fwd(p), rev(p);
    std::vector<std::uint64_t> stream;
    for (int i = 0; i < 100; ++i)
        stream.push_back((i * 7 % 20) * 64);
    for (auto a : stream)
        fwd.access(a, false);
    rev.beginReconstruction();
    for (auto it = stream.rbegin(); it != stream.rend(); ++it)
        rev.reconstructRef(*it);
    for (std::uint64_t line = 0; line < 20; ++line)
        EXPECT_EQ(fwd.recencyOf(line * 64), rev.recencyOf(line * 64));
}

TEST(Robustness, DirectMappedWholeHierarchy)
{
    // Assoc-1 everywhere still runs a full sampled simulation.
    const auto prog = workload::buildSynthetic(
        workload::standardWorkloadParams("twolf"));
    core::SampledConfig cfg;
    cfg.totalInsts = 200'000;
    cfg.regimen = {8, 1500};
    cfg.machine = core::MachineConfig::scaledDefault();
    cfg.machine.hier.il1.assoc = 1;
    cfg.machine.hier.dl1.assoc = 1;
    cfg.machine.hier.l2.assoc = 1;
    auto rsr = core::ReverseReconstructionWarmup::full(1.0);
    const auto r = core::runSampled(prog, *rsr, cfg);
    EXPECT_EQ(r.clusterIpc.size(), 8u);
}

} // namespace
} // namespace rsr
