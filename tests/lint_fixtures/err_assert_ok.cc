// Fixture: rsr_assert throws InternalError — recoverable, on in every
// build type. static_assert is compile-time and also fine.
namespace rsr
{

void
check(int fill)
{
    static_assert(sizeof(int) >= 4, "ILP32 or wider");
    // rsr_assert(fill >= 0, "negative fill"); lives in real code; the
    // prefixed name below must not trip the bare-assert rule.
    [[maybe_unused]] auto rsr_assert_like = fill;
}

} // namespace rsr
