// Clean twin for snap-missing-member: every member is either serialized
// in both snapshot() and restore(), or carries an explicit
// snap-excluded marker naming why it needs no serialization.
#include <cstdint>

namespace rsr
{

class Serializer
{
  public:
    void begin(std::uint32_t tag, std::uint32_t version);
    void end();
    void putU64(std::uint64_t v);
};

class Deserializer
{
  public:
    std::uint32_t begin(std::uint32_t tag);
    void end();
    std::uint64_t getU64();
};

class Snapshotable
{
  public:
    virtual ~Snapshotable() = default;
    virtual void snapshot(Serializer &out) const = 0;
    virtual void restore(Deserializer &in) = 0;
};

constexpr std::uint32_t widgetTag = 0x57494447;
constexpr std::uint32_t widgetVersion = 1;

class Widget : public Snapshotable
{
  public:
    void
    snapshot(Serializer &out) const override
    {
        out.begin(widgetTag, widgetVersion);
        out.putU64(kept_);
        out.end();
    }

    void
    restore(Deserializer &in) override
    {
        in.begin(widgetTag);
        kept_ = in.getU64();
        in.end();
    }

  private:
    std::uint64_t kept_ = 0;
    // rsrlint: snap-excluded(scratch accumulator, rebuilt on first use)
    std::uint64_t lost_ = 0;
};

} // namespace rsr
