// Fixture: the hot loop reports failure through its return value; the
// cold caller owns the exceptional path. rsr_assert stays legal here —
// its throw is hidden in a macro that is cold when the check passes.
// rsrlint: hot

namespace rsr
{

bool
step(long *pc, bool ok)
{
    if (!ok)
        return false; // caller raises SimError outside the loop
    *pc += 4;
    return true;
}

} // namespace rsr
