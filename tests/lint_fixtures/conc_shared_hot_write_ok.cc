/**
 * @file
 * Clean twin for conc-shared-hot-write: shared writes carry a
 * commit-zone marker (disjoint-by-index slots), and everything else is
 * value-captured or lambda-local.
 */

#include <cstddef>
#include <functional>
#include <vector>

namespace rsr
{

class Pool
{
  public:
    void submit(std::function<void()> task);
};

void
fanOutSlots(Pool &pool, std::vector<double> &results, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        pool.submit([&results, i] {
            // rsrlint: commit-zone — slot i is owned by this task alone.
            results[i] = static_cast<double>(i) * 0.5;
        });
}

void
fanOutLocal(Pool &pool, std::vector<double> seed)
{
    pool.submit([seed] {
        std::vector<double> scratch = seed;
        scratch.push_back(1.0);
    });
}

} // namespace rsr
