// Clean twin for snap-asymmetry: snapshot() and restore() touch the
// same members in the same relative order; a validate-then-assign
// restore style (extra member mentions in checks or error paths) does
// not count as asymmetry.
#include <cstdint>

namespace rsr
{

class Serializer
{
  public:
    void begin(std::uint32_t tag, std::uint32_t version);
    void end();
    void putU64(std::uint64_t v);
};

class Deserializer
{
  public:
    std::uint32_t begin(std::uint32_t tag);
    void end();
    std::uint64_t getU64();
};

class Snapshotable
{
  public:
    virtual ~Snapshotable() = default;
    virtual void snapshot(Serializer &out) const = 0;
    virtual void restore(Deserializer &in) = 0;
};

constexpr std::uint32_t pairTag = 0x50414952;
constexpr std::uint32_t pairVersion = 1;

class Pair : public Snapshotable
{
  public:
    void
    snapshot(Serializer &out) const override
    {
        out.begin(pairTag, pairVersion);
        out.putU64(a_);
        out.putU64(b_);
        out.putU64(c_);
        out.end();
    }

    void
    restore(Deserializer &in) override
    {
        in.begin(pairTag);
        const std::uint64_t a_in = in.getU64(); // validate a_ first
        a_ = a_in;
        b_ = in.getU64();
        c_ = in.getU64();
        in.end();
    }

  private:
    std::uint64_t a_ = 0;
    std::uint64_t b_ = 0;
    std::uint64_t c_ = 0;
};

} // namespace rsr
