// Fixture: serve-zone code going through the deadline-capped net_io
// wrappers. Wrapper names that merely contain a syscall name
// (recvFrame, sendFrame) and method calls (source.read) never fire the
// rule; neither do comments mentioning recv( or poll( directly.
#include <cstddef>

namespace rsr::serve
{

struct Frame;
class Deadline;
bool recvFrame(int fd, const Deadline &deadline, Frame &out);
void sendFrame(int fd, const Frame &frame, const Deadline &deadline);

bool
roundTrip(int fd, const Deadline &deadline, Frame &frame)
{
    sendFrame(fd, frame, deadline);
    return recvFrame(fd, deadline, frame);
}

template <typename Source>
std::size_t
drainBuffered(Source &source, unsigned char *buf, std::size_t n)
{
    return source.read(buf, n);
}

} // namespace rsr::serve
