// Fixture: the two sanctioned patterns — sort a materialized copy
// (with a justified suppression), or point-query only.
#include <algorithm>
#include <cstdio>
#include <unordered_map>
#include <vector>

namespace rsr
{

void
emitCountsSorted(const std::unordered_map<int, long> &counts)
{
    std::vector<std::pair<int, long>> rows(
        // rsrlint: allow(det-unordered-iter) — sorted just below
        counts.begin(), counts.end());
    std::sort(rows.begin(), rows.end());
    for (const auto &[key, value] : rows)
        std::printf("%d,%ld\n", key, value);
}

bool
lookup(const std::unordered_map<int, long> &counts, int key)
{
    // find() against end() is a point query, not iteration.
    return counts.find(key) != counts.end();
}

} // namespace rsr
