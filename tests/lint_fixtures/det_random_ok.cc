// Fixture: the sanctioned way to be random — a seeded rsr::Rng whose
// whole stream replays from the seed.
namespace rsr
{

class Rng;

int
jitter(Rng &rng);

int
pick(Rng &rng)
{
    // A comment mentioning rand() or std::random_device is fine, as is
    // the string "rand()" below: rules only match real code.
    const char *label = "rand()";
    return label[0] + jitter(rng);
}

} // namespace rsr
