// Fixture: raw socket syscalls in the serve zone. Each of these blocks
// forever on a hung peer; the daemon's robustness contract requires the
// deadline-capped wrappers in src/serve/net_io.hh instead.
#include <cstddef>

namespace rsr::serve
{

long
readRequest(int fd, unsigned char *buf, std::size_t n)
{
    return recv(fd, buf, n, 0);
}

long
writeReply(int fd, const unsigned char *buf, std::size_t n)
{
    return ::send(fd, buf, n, 0);
}

int
takeOne(int listen_fd)
{
    return ::accept(listen_fd, nullptr, nullptr);
}

} // namespace rsr::serve
