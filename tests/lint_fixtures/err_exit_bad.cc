// Fixture: library code ending the process instead of throwing.
#include <cstdlib>

namespace rsr
{

void
mustHave(bool ok)
{
    if (!ok)
        std::exit(1);
}

void
crash()
{
    abort();
}

} // namespace rsr
