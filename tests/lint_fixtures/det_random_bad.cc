// Fixture: seeds nondeterminism into library code. Never compiled;
// scanned by test_lint.cc as if it lived under src/.
#include <cstdlib>
#include <random>

namespace rsr
{

int
jitter()
{
    std::random_device rd;
    return static_cast<int>(rand() + rd());
}

void
reseed()
{
    srand(42);
}

} // namespace rsr
