// Seeded violation for snap-version-drift: the companion
// snap_version_drift_bad.abi records Gadget v1 serializing only `x_`,
// but the code now serializes `x_,y_` while still claiming version 1 —
// old stores would be misread as the new layout.
#include <cstdint>

namespace rsr
{

class Serializer
{
  public:
    void begin(std::uint32_t tag, std::uint32_t version);
    void end();
    void putU64(std::uint64_t v);
};

class Deserializer
{
  public:
    std::uint32_t begin(std::uint32_t tag);
    void end();
    std::uint64_t getU64();
};

class Snapshotable
{
  public:
    virtual ~Snapshotable() = default;
    virtual void snapshot(Serializer &out) const = 0;
    virtual void restore(Deserializer &in) = 0;
};

constexpr std::uint32_t gadgetTag = 0x47414447;
constexpr std::uint32_t gadgetVersion = 1;

class Gadget : public Snapshotable
{
  public:
    void
    snapshot(Serializer &out) const override
    {
        out.begin(gadgetTag, gadgetVersion);
        out.putU64(x_);
        out.putU64(y_);
        out.end();
    }

    void
    restore(Deserializer &in) override
    {
        in.begin(gadgetTag);
        x_ = in.getU64();
        y_ = in.getU64();
        in.end();
    }

  private:
    std::uint64_t x_ = 0;
    std::uint64_t y_ = 0;
};

} // namespace rsr
