// Seeded violations for snap-asymmetry: `c_` is written by snapshot()
// but never read back by restore(), and the common members `a_` / `b_`
// are restored in the opposite order they were snapshotted — framed
// payloads are positional, so both silently corrupt replayed state.
#include <cstdint>

namespace rsr
{

class Serializer
{
  public:
    void begin(std::uint32_t tag, std::uint32_t version);
    void end();
    void putU64(std::uint64_t v);
};

class Deserializer
{
  public:
    std::uint32_t begin(std::uint32_t tag);
    void end();
    std::uint64_t getU64();
};

class Snapshotable
{
  public:
    virtual ~Snapshotable() = default;
    virtual void snapshot(Serializer &out) const = 0;
    virtual void restore(Deserializer &in) = 0;
};

constexpr std::uint32_t pairTag = 0x50414952;
constexpr std::uint32_t pairVersion = 1;

class Pair : public Snapshotable
{
  public:
    void
    snapshot(Serializer &out) const override
    {
        out.begin(pairTag, pairVersion);
        out.putU64(a_);
        out.putU64(b_);
        out.putU64(c_);
        out.end();
    }

    void
    restore(Deserializer &in) override
    {
        in.begin(pairTag);
        b_ = in.getU64();
        a_ = in.getU64();
        in.end();
    }

  private:
    std::uint64_t a_ = 0;
    std::uint64_t b_ = 0;
    std::uint64_t c_ = 0;
};

} // namespace rsr
