// Fixture: the suppression below misspells det-random, so it protects
// nothing — rsrlint must flag the dead allow() instead of trusting it.

namespace rsr
{

// rsrlint: allow(det-randm)
int
answer()
{
    return 42;
}

} // namespace rsr
