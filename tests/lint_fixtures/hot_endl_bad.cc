// Fixture: std::endl in library code — a flush per line on paths that
// may sit inside the measurement loop.
#include <iostream>

namespace rsr
{

void
report(long clusters)
{
    std::cout << "clusters " << clusters << std::endl;
}

} // namespace rsr
