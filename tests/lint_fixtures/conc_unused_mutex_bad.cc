// Fixture: a mutex member that no code path ever locks — the state it
// was meant to guard is mutated bare.
#include <cstdint>
#include <mutex>

namespace rsr
{

class Counter
{
  public:
    void bump() { ++value_; } // unguarded write

    std::uint64_t read() const { return value_; }

  private:
    std::mutex mu_;
    std::uint64_t value_ = 0;
};

} // namespace rsr
