// Fixture: suppressions that name real rules are legal even when the
// guarded line would not have fired — only unknown names are flagged.
// rsrlint: allow-file(hot-endl)

namespace rsr
{

// rsrlint: allow(det-random)
int
answer()
{
    return 42;
}

} // namespace rsr
