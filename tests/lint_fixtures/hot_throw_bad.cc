// Fixture: a file on the measurement inner loop that throws.
// rsrlint: hot
#include <stdexcept>

namespace rsr
{

long
step(long pc, bool ok)
{
    if (!ok)
        throw std::runtime_error("halt inside the hot loop");
    return pc + 4;
}

} // namespace rsr
