// Fixture: library code reports failure through the SimError taxonomy
// so the campaign runner can record it and keep going.
#include <stdexcept>

namespace rsr
{

void
mustHave(bool ok)
{
    if (!ok)
        throw std::runtime_error("invariant violated");
    // Words like exit or abort in comments (or "exit(1)" in strings)
    // never fire the rule.
}

} // namespace rsr
