// Fixture: constants and class-owned state are fine at namespace scope.
#include <cstdint>
#include <string>

namespace rsr
{

constexpr std::uint64_t kMaxClusters = 4096;
const char *const kToolName = "rsr_sim";
static constexpr double kTolerance = 1e-9;

class Accumulator
{
  public:
    void add(std::uint64_t n) { total_ += n; }

  private:
    std::uint64_t total_ = 0; // member state: owned, not shared
};

std::uint64_t
record(Accumulator &acc, std::uint64_t n)
{
    acc.add(n);
    return n;
}

} // namespace rsr
