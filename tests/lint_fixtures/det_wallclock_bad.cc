// Fixture: wall-clock reads in library code.
#include <chrono>
#include <ctime>

namespace rsr
{

long
stamp()
{
    const auto now = std::chrono::system_clock::now();
    return now.time_since_epoch().count() +
           static_cast<long>(time(nullptr));
}

} // namespace rsr
