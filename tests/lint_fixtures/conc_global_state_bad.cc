// Fixture: mutable namespace-scope state — racy once the thread pool
// replays clusters in parallel.
#include <cstdint>
#include <string>

namespace rsr
{

static std::uint64_t g_total_insts = 0;
std::string last_error;

namespace detail
{
int call_depth;
} // namespace detail

void
record(std::uint64_t n)
{
    g_total_insts += n;
}

} // namespace rsr
