/**
 * @file
 * Seeded violations for conc-shared-hot-write: pool-submitted lambdas
 * writing reference-captured containers with no commit-zone marker.
 */

#include <cstddef>
#include <functional>
#include <vector>

namespace rsr
{

class Pool
{
  public:
    void submit(std::function<void()> task);
};

void
fanOutSlots(Pool &pool, std::vector<double> &results, std::size_t n)
{
    for (std::size_t i = 0; i < n; ++i)
        pool.submit([&results, i] {
            results[i] = static_cast<double>(i) * 0.5;
        });
}

void
fanOutGrow(Pool &pool, std::vector<double> &log)
{
    pool.submit([&] {
        log.push_back(1.0);
    });
}

} // namespace rsr
