// Fixture: every access to the guarded state takes the lock.
#include <cstdint>
#include <mutex>

namespace rsr
{

class Counter
{
  public:
    void
    bump()
    {
        std::lock_guard<std::mutex> lk(mu_);
        ++value_;
    }

    std::uint64_t
    read() const
    {
        std::lock_guard<std::mutex> lk(mu_);
        return value_;
    }

  private:
    mutable std::mutex mu_;
    std::uint64_t value_ = 0;
};

} // namespace rsr
