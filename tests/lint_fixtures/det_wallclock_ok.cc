// Fixture: steady_clock is the sanctioned (monotonic) clock — it times
// phases without ever feeding simulated results.
#include <chrono>

namespace rsr
{

double
elapsed(std::chrono::steady_clock::time_point start)
{
    const auto now = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(now - start).count();
}

} // namespace rsr
