// Fixture: C assert() aborts the process (and vanishes under NDEBUG).
#include <cassert>

namespace rsr
{

void
check(int fill)
{
    assert(fill >= 0);
}

} // namespace rsr
