// Fixture: '\n' writes the newline without flushing; the stream
// flushes once when it is destroyed or explicitly flushed at the end.
#include <iostream>

namespace rsr
{

void
report(long clusters)
{
    std::cout << "clusters " << clusters << '\n';
    // The word endl in a comment, or "std::endl" in a string literal,
    // must not fire the rule:
    const char *doc = "use '\\n' instead of std::endl";
    std::cout << doc << '\n';
}

} // namespace rsr
