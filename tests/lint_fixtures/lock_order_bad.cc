// Seeded violation for lock-order: the documented discipline is pool
// mutex before any lane mutex, but drainLane() grabs a lane lock and
// then acquires the pool mutex while still holding it — the inverse
// nesting that deadlocks against submit().
#include <cstdint>
#include <mutex>

namespace rsr
{

class Pool
{
  public:
    void
    submit()
    {
        std::lock_guard<std::mutex> lk(mu);
        std::lock_guard<std::mutex> lane_lk(lane_.mu);
        ++lane_.depth;
    }

    void
    drainLane()
    {
        std::lock_guard<std::mutex> lane_lk(lane_.mu);
        std::lock_guard<std::mutex> lk(mu);
        ++drained_;
    }

  private:
    struct Lane
    {
        std::mutex mu;
        std::uint64_t depth = 0;
    };

    // rsrlint: lock-order(mu < lane.mu)
    std::mutex mu;
    Lane lane_;
    std::uint64_t drained_ = 0;
};

} // namespace rsr
