// Clean twin for lock-order: every path that needs both locks takes the
// pool mutex first and the lane mutex second, matching the documented
// discipline; taking a lane lock alone is also fine.
#include <cstdint>
#include <mutex>

namespace rsr
{

class Pool
{
  public:
    void
    submit()
    {
        std::lock_guard<std::mutex> lk(mu);
        std::lock_guard<std::mutex> lane_lk(lane_.mu);
        ++lane_.depth;
    }

    void
    drainLane()
    {
        std::lock_guard<std::mutex> lane_lk(lane_.mu);
        ++drained_;
    }

  private:
    struct Lane
    {
        std::mutex mu;
        std::uint64_t depth = 0;
    };

    // rsrlint: lock-order(mu < lane.mu)
    std::mutex mu;
    Lane lane_;
    std::uint64_t drained_ = 0;
};

} // namespace rsr
