// Fixture: hash-map iteration order leaking into emitted output.
#include <cstdio>
#include <unordered_map>
#include <unordered_set>

namespace rsr
{

void
emitCounts(const std::unordered_map<int, long> &counts)
{
    for (const auto &[key, value] : counts)
        std::printf("%d,%ld\n", key, value);
}

long
sumViaIterators(std::unordered_set<long> &seen)
{
    long total = 0;
    for (auto it = seen.begin(); it != seen.end(); ++it)
        total += *it; // integer sum is safe, but the rule is lexical
    return total;
}

} // namespace rsr
