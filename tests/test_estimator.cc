/**
 * @file
 * Estimator-policy tests: closed-form fixtures for the matched-pair and
 * ranked-set / stratified statistics, seeded-determinism and structural
 * properties of the selection plans and the Neyman allocation, and the
 * Table-2-style equivalence suite — a ranked-set or two-phase run must
 * be bit-identical across worker counts, steal seeds, and direct-vs-
 * live-point-store execution.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "core/estimator.hh"
#include "core/livepoint_store.hh"
#include "harness/estimator_run.hh"
#include "harness/parallel_run.hh"
#include "core/warmup.hh"
#include "util/error.hh"
#include "util/random.hh"
#include "workload/synthetic.hh"

namespace rsr::harness
{
namespace
{

using core::EstimatorOptions;
using core::ProxyKind;
using core::SamplingPolicyKind;

// ---------------------------------------------------- matched-pair math

TEST(EstimatorMath, TQuantileTable)
{
    EXPECT_DOUBLE_EQ(core::tQuantile975(0), 0.0);
    EXPECT_DOUBLE_EQ(core::tQuantile975(1), 12.706);
    EXPECT_DOUBLE_EQ(core::tQuantile975(2), 4.303);
    EXPECT_DOUBLE_EQ(core::tQuantile975(10), 2.228);
    EXPECT_DOUBLE_EQ(core::tQuantile975(30), 2.042);
    EXPECT_DOUBLE_EQ(core::tQuantile975(31), 1.96);
    EXPECT_DOUBLE_EQ(core::tQuantile975(10'000), 1.96);
}

TEST(EstimatorMath, MatchedPairClosedForm)
{
    // Diffs {-1, 0, 1}: mean 0, sd 1, stderr 1/sqrt(3), t_2 = 4.303.
    const auto c = core::matchedPairCompare({1.0, 2.0, 3.0},
                                            {2.0, 2.0, 2.0});
    EXPECT_EQ(c.pairs, 3u);
    EXPECT_DOUBLE_EQ(c.meanDiff, 0.0);
    EXPECT_DOUBLE_EQ(c.stddev, 1.0);
    EXPECT_DOUBLE_EQ(c.stdErr, 1.0 / std::sqrt(3.0));
    EXPECT_DOUBLE_EQ(c.ciHigh, 4.303 / std::sqrt(3.0));
    EXPECT_DOUBLE_EQ(c.ciLow, -4.303 / std::sqrt(3.0));
    EXPECT_FALSE(c.significant());
}

TEST(EstimatorMath, MatchedPairConstantShiftIsSignificant)
{
    // Identical-variance pairs shifted by a constant: the differences
    // have zero spread, so the CI collapses onto the shift.
    const auto c = core::matchedPairCompare({1.5, 2.5, 0.5, 3.5},
                                            {1.0, 2.0, 0.0, 3.0});
    EXPECT_DOUBLE_EQ(c.meanDiff, 0.5);
    EXPECT_DOUBLE_EQ(c.stdErr, 0.0);
    EXPECT_DOUBLE_EQ(c.ciLow, 0.5);
    EXPECT_DOUBLE_EQ(c.ciHigh, 0.5);
    EXPECT_TRUE(c.significant());
}

TEST(EstimatorMath, MatchedPairSinglePairIsDegenerate)
{
    const auto c = core::matchedPairCompare({2.0}, {1.0});
    EXPECT_EQ(c.pairs, 1u);
    EXPECT_DOUBLE_EQ(c.meanDiff, 1.0);
    EXPECT_DOUBLE_EQ(c.stdErr, 0.0);
    EXPECT_DOUBLE_EQ(c.ciLow, 1.0);
    EXPECT_DOUBLE_EQ(c.ciHigh, 1.0);
    EXPECT_FALSE(c.significant());
}

TEST(EstimatorMath, MatchedPairLengthMismatchThrows)
{
    EXPECT_THROW(core::matchedPairCompare({1.0}, {1.0, 2.0}), UserError);
}

// -------------------------------------------- point-estimate closed forms

TEST(EstimatorMath, RankedSetEstimateClosedForm)
{
    // Two rank classes of two: class 0 = {1,3}, class 1 = {2,4}.
    // Mean of class means = 2.5; Var = (1/4)(2/2 + 2/2) = 0.5.
    const auto est = core::rankedSetEstimate({1.0, 2.0, 3.0, 4.0},
                                             {0, 1, 0, 1}, 2);
    EXPECT_EQ(est.numClusters, 4u);
    EXPECT_DOUBLE_EQ(est.mean, 2.5);
    EXPECT_DOUBLE_EQ(est.stdErr, std::sqrt(0.5));
    EXPECT_DOUBLE_EQ(est.stddev, std::sqrt(5.0 / 3.0));
    EXPECT_DOUBLE_EQ(est.ciHigh, 2.5 + 1.96 * std::sqrt(0.5));
}

TEST(EstimatorMath, RankedSetSingletonClassFallsBackToSrs)
{
    // Class 1 has one measurement: no within-class variance, so the
    // standard error falls back to the pooled SRS formula.
    const auto est =
        core::rankedSetEstimate({1.0, 2.0, 3.0}, {0, 1, 0}, 2);
    const double pooled_sd = std::sqrt(1.0); // var of {1,2,3}
    EXPECT_DOUBLE_EQ(est.mean, (2.0 + 2.0) / 2.0);
    EXPECT_DOUBLE_EQ(est.stdErr, pooled_sd / std::sqrt(3.0));
}

TEST(EstimatorMath, StratifiedEstimateClosedForm)
{
    // Stratum 0 = {1,2} (n=2), stratum 1 = {10} (n=1, borrows the
    // pooled within-stratum variance 0.5). Equal candidate weights.
    const auto est =
        core::stratifiedEstimate({1.0, 2.0, 10.0}, {0, 0, 1}, {2, 2});
    EXPECT_DOUBLE_EQ(est.mean, 0.5 * 1.5 + 0.5 * 10.0);
    EXPECT_DOUBLE_EQ(est.stdErr,
                     std::sqrt(0.25 * 0.5 / 2.0 + 0.25 * 0.5 / 1.0));
    EXPECT_DOUBLE_EQ(est.stddev, est.stdErr * std::sqrt(3.0));
}

// ----------------------------------------------------- selection plans

std::vector<double>
randomScores(std::size_t n, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<double> s(n);
    for (double &v : s)
        v = rng.uniform();
    return s;
}

void
expectWellFormedPlan(const core::SelectionPlan &plan,
                     std::size_t candidate_count)
{
    ASSERT_EQ(plan.chosen.size(), plan.group.size());
    EXPECT_TRUE(std::is_sorted(plan.chosen.begin(), plan.chosen.end()));
    const std::set<std::size_t> uniq(plan.chosen.begin(),
                                     plan.chosen.end());
    EXPECT_EQ(uniq.size(), plan.chosen.size());
    for (const std::size_t c : plan.chosen)
        EXPECT_LT(c, candidate_count);
}

TEST(EstimatorSelect, RankedSetPlanIsSeededAndBalanced)
{
    EstimatorOptions opts;
    opts.kind = SamplingPolicyKind::RankedSet;
    opts.setSize = 4;
    const std::uint64_t budget = 12;
    const auto scores = randomScores(budget * opts.setSize, 0xabc);

    const auto plan = core::rankedSetSelect(scores, budget, opts);
    expectWellFormedPlan(plan, scores.size());
    EXPECT_EQ(plan.chosen.size(), budget);

    // Repeated subsampling: every rank class gets budget/m measurements.
    std::vector<unsigned> per_class(opts.setSize, 0);
    for (const std::uint32_t g : plan.group) {
        ASSERT_LT(g, opts.setSize);
        ++per_class[g];
    }
    for (const unsigned n : per_class)
        EXPECT_EQ(n, budget / opts.setSize);

    // Same seed, same plan; different seed, different plan.
    const auto again = core::rankedSetSelect(scores, budget, opts);
    EXPECT_EQ(plan.chosen, again.chosen);
    EXPECT_EQ(plan.group, again.group);
    opts.rankSeed ^= 1;
    const auto other = core::rankedSetSelect(scores, budget, opts);
    EXPECT_NE(plan.chosen, other.chosen);
}

TEST(EstimatorSelect, EffectiveRankedSetBudgetRounds)
{
    EstimatorOptions opts;
    opts.setSize = 4;
    EXPECT_EQ(core::effectiveRankedSetBudget(12, opts), 12u);
    EXPECT_EQ(core::effectiveRankedSetBudget(10, opts), 8u);
    EXPECT_EQ(core::effectiveRankedSetBudget(2, opts), 4u);
}

TEST(EstimatorSelect, StratifyByScoreMakesEqualQuantiles)
{
    const auto scores = randomScores(10, 0x51);
    const auto plan = core::stratifyByScore(scores, 4);
    ASSERT_EQ(plan.stratumOf.size(), scores.size());
    EXPECT_EQ(plan.stratumSize,
              quantileStratumSizes(scores.size(), 4));

    // Stratum ids are monotone in the proxy score: everything in
    // stratum h scores at or below everything in stratum h+1.
    for (std::size_t a = 0; a < scores.size(); ++a)
        for (std::size_t b = 0; b < scores.size(); ++b)
            if (plan.stratumOf[a] < plan.stratumOf[b]) {
                EXPECT_LE(scores[a], scores[b]);
            }
}

TEST(EstimatorSelect, QuantileStratumSizesSplitEqually)
{
    EXPECT_EQ(quantileStratumSizes(10, 4),
              (std::vector<std::uint64_t>{3, 3, 2, 2}));
    EXPECT_EQ(quantileStratumSizes(8, 4),
              (std::vector<std::uint64_t>{2, 2, 2, 2}));
    // Fewer candidates than strata: one singleton stratum each.
    EXPECT_EQ(quantileStratumSizes(2, 4),
              (std::vector<std::uint64_t>{1, 1}));
    EXPECT_EQ(quantileStratumSizes(5, 1),
              (std::vector<std::uint64_t>{5}));
}

TEST(EstimatorSelect, PilotSelectDrawsPerStratum)
{
    const auto scores = randomScores(20, 0x77);
    const auto strata = core::stratifyByScore(scores, 4);
    const auto pilot = core::pilotSelect(strata, 2, 0x123);
    expectWellFormedPlan(pilot, scores.size());
    EXPECT_EQ(pilot.chosen.size(), 8u);

    std::vector<unsigned> per_stratum(4, 0);
    for (std::size_t i = 0; i < pilot.chosen.size(); ++i) {
        EXPECT_EQ(pilot.group[i], strata.stratumOf[pilot.chosen[i]]);
        ++per_stratum[pilot.group[i]];
    }
    for (const unsigned n : per_stratum)
        EXPECT_EQ(n, 2u);

    const auto again = core::pilotSelect(strata, 2, 0x123);
    EXPECT_EQ(pilot.chosen, again.chosen);
    const auto other = core::pilotSelect(strata, 2, 0x124);
    EXPECT_NE(pilot.chosen, other.chosen);
}

TEST(EstimatorSelect, NeymanAllocationExactOnCleanWeights)
{
    // N_h * sigma_h = {0, 10, 20, 10}: budget 12 splits {0, 3, 6, 3}.
    const auto got = core::allocateNeyman({0.0, 1.0, 2.0, 1.0},
                                          {10, 10, 10, 10},
                                          {8, 8, 8, 8}, 12);
    EXPECT_EQ(got, (std::vector<std::uint64_t>{0, 3, 6, 3}));
}

TEST(EstimatorSelect, NeymanAllocationRespectsCaps)
{
    const auto got = core::allocateNeyman({0.0, 1.0, 2.0, 1.0},
                                          {10, 10, 10, 10},
                                          {8, 8, 8, 8}, 40);
    std::uint64_t total = 0;
    for (std::size_t h = 0; h < got.size(); ++h) {
        EXPECT_LE(got[h], 8u);
        total += got[h];
    }
    EXPECT_EQ(total, 32u); // min(budget, sum of caps)
}

TEST(EstimatorSelect, NeymanAllocationFallsBackToProportional)
{
    // All-zero pilot sigma: allocate by stratum size instead.
    const auto got = core::allocateNeyman({0.0, 0.0, 0.0, 0.0},
                                          {10, 20, 30, 40},
                                          {10, 20, 30, 40}, 10);
    EXPECT_EQ(got, (std::vector<std::uint64_t>{1, 2, 3, 4}));
}

TEST(EstimatorSelect, FinalStratifiedSelectIsAUnionPlan)
{
    const auto scores = randomScores(24, 0x99);
    const auto strata = core::stratifyByScore(scores, 4);
    const auto pilot = core::pilotSelect(strata, 2, 0x42);
    const std::vector<std::uint64_t> extra{1, 0, 2, 1};

    const auto final_plan =
        core::finalStratifiedSelect(strata, pilot, extra, 0x42);
    expectWellFormedPlan(final_plan, scores.size());
    EXPECT_EQ(final_plan.chosen.size(), pilot.chosen.size() + 4u);

    // Every pilot candidate is re-measured by the union schedule.
    const std::set<std::size_t> final_set(final_plan.chosen.begin(),
                                          final_plan.chosen.end());
    for (const std::size_t c : pilot.chosen)
        EXPECT_TRUE(final_set.count(c));
    for (std::size_t i = 0; i < final_plan.chosen.size(); ++i)
        EXPECT_EQ(final_plan.group[i],
                  strata.stratumOf[final_plan.chosen[i]]);
}

TEST(EstimatorSelect, CandidateCountPerKind)
{
    EstimatorOptions opts;
    opts.setSize = 4;
    opts.kind = SamplingPolicyKind::UniformCluster;
    EXPECT_EQ(estimatorCandidateCount(10, opts), 10u);
    opts.kind = SamplingPolicyKind::RankedSet;
    EXPECT_EQ(estimatorCandidateCount(10, opts), 32u); // 8 sets of 4
    opts.kind = SamplingPolicyKind::TwoPhaseStratified;
    EXPECT_EQ(estimatorCandidateCount(10, opts), 40u);
}

TEST(EstimatorSelect, NamesRoundTrip)
{
    for (const auto kind : {SamplingPolicyKind::UniformCluster,
                            SamplingPolicyKind::RankedSet,
                            SamplingPolicyKind::TwoPhaseStratified})
        EXPECT_EQ(core::samplingPolicyByName(
                      core::samplingPolicyName(kind)), kind);
    for (const auto proxy : {ProxyKind::FuncIpc, ProxyKind::BbvDistance})
        EXPECT_EQ(core::proxyKindByName(core::proxyKindName(proxy)),
                  proxy);
    EXPECT_THROW(core::samplingPolicyByName("bogus"), UserError);
    EXPECT_THROW(core::proxyKindByName("bogus"), UserError);
}

// ----------------------------------------- end-to-end equivalence suite

class EstimatorRun : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        prog = new func::Program(workload::buildSynthetic(
            workload::standardWorkloadParams("twolf")));
        cfg = new core::SampledConfig();
        cfg->totalInsts = 300'000;
        cfg->regimen = {12, 2000};
        cfg->machine = core::MachineConfig::scaledDefault();
    }

    static void
    TearDownTestSuite()
    {
        delete prog;
        delete cfg;
    }

    static EstimatorOptions
    rankedOpts()
    {
        EstimatorOptions o;
        o.kind = SamplingPolicyKind::RankedSet;
        o.setSize = 4;
        return o;
    }

    static EstimatorOptions
    twoPhaseOpts()
    {
        EstimatorOptions o;
        o.kind = SamplingPolicyKind::TwoPhaseStratified;
        o.setSize = 4;
        o.strata = 4;
        o.phase1PerStratum = 2;
        return o;
    }

    static void
    expectSameRun(const EstimatorRunResult &a, const EstimatorRunResult &b)
    {
        EXPECT_EQ(a.sampled.clusterIpc, b.sampled.clusterIpc);
        EXPECT_EQ(a.estimate.mean, b.estimate.mean);
        EXPECT_EQ(a.estimate.stdErr, b.estimate.stdErr);
        EXPECT_EQ(a.groups, b.groups);
        ASSERT_EQ(a.schedule.size(), b.schedule.size());
        for (std::size_t i = 0; i < a.schedule.size(); ++i) {
            EXPECT_EQ(a.schedule[i].start, b.schedule[i].start);
            EXPECT_EQ(a.schedule[i].size, b.schedule[i].size);
        }
        EXPECT_EQ(a.candidateCount, b.candidateCount);
        // pilotMeasuredInsts deliberately not compared: store replay
        // skips the pilot (the capture already paid it) yet must still
        // reproduce the estimate bit-exactly.
    }

    static func::Program *prog;
    static core::SampledConfig *cfg;
};

func::Program *EstimatorRun::prog = nullptr;
core::SampledConfig *EstimatorRun::cfg = nullptr;

TEST_F(EstimatorRun, UniformKindMatchesPlainParallelRun)
{
    EstimatorOptions uniform;
    const auto est = runEstimator(*prog, "smarts", *cfg, uniform, 2);
    auto policy = core::makePolicyByName("smarts");
    const auto plain = runSampledParallel(*prog, *policy, *cfg, 1);
    EXPECT_EQ(est.sampled.clusterIpc, plain.clusterIpc);
    EXPECT_EQ(est.estimate.mean, plain.estimate.mean);
    EXPECT_EQ(est.candidateCount, est.schedule.size());
    EXPECT_EQ(est.pilotMeasuredInsts, 0u);
}

TEST_F(EstimatorRun, RankedSetBitIdenticalAcrossJobsAndStealSeeds)
{
    const auto j1 = runEstimator(*prog, "rsr40", *cfg, rankedOpts(), 1);
    const auto j3 = runEstimator(*prog, "rsr40", *cfg, rankedOpts(), 3);
    const auto j4 = runEstimator(*prog, "rsr40", *cfg, rankedOpts(), 4,
                                 /*steal_seed=*/0x5eed);
    expectSameRun(j1, j3);
    expectSameRun(j1, j4);
    EXPECT_EQ(j1.schedule.size(), 12u);
    EXPECT_EQ(j1.candidateCount, 48u);
}

TEST_F(EstimatorRun, TwoPhaseBitIdenticalAcrossJobsAndStealSeeds)
{
    const auto j1 = runEstimator(*prog, "smarts", *cfg, twoPhaseOpts(), 1);
    const auto j3 = runEstimator(*prog, "smarts", *cfg, twoPhaseOpts(), 3);
    const auto j4 = runEstimator(*prog, "smarts", *cfg, twoPhaseOpts(), 4,
                                 /*steal_seed=*/0x5eed);
    expectSameRun(j1, j3);
    expectSameRun(j1, j4);
    // Union schedule: exactly the budget, pilot cost charged on top.
    EXPECT_EQ(j1.schedule.size(), 12u);
    EXPECT_EQ(j1.sampled.phases.measureInsts, 12u * 2000u);
    EXPECT_EQ(j1.pilotMeasuredInsts, 8u * 2000u); // 4 strata x 2 pilots
    EXPECT_EQ(j1.measuredInsts(), 20u * 2000u);
}

TEST_F(EstimatorRun, RankedSetStoreReplayMatchesDirectRun)
{
    const auto direct =
        runEstimator(*prog, "rsr40", *cfg, rankedOpts(), 1);
    const auto store = captureEstimatorStore(*prog, "rsr40", *cfg,
                                             rankedOpts(), "twolf");
    const auto replayed =
        replayEstimatorStore(store, cfg->machine, 3, /*steal_seed=*/7);
    expectSameRun(direct, replayed);
}

TEST_F(EstimatorRun, TwoPhaseStoreSurvivesSerializationRoundTrip)
{
    const auto direct =
        runEstimator(*prog, "smarts", *cfg, twoPhaseOpts(), 1);
    const auto store = captureEstimatorStore(*prog, "smarts", *cfg,
                                             twoPhaseOpts(), "twolf");
    // Round-trip through bytes: the v2 index must preserve the
    // estimator annotations that drive the stratified estimate.
    const auto reloaded =
        core::LivePointStore::deserialize(store.serialize());
    EXPECT_EQ(reloaded.meta().estimator.kind,
              SamplingPolicyKind::TwoPhaseStratified);
    EXPECT_EQ(reloaded.meta().candidateCount, 48u);
    EXPECT_EQ(reloaded.configHash(), store.configHash());

    const auto replayed = replayEstimatorStore(reloaded, cfg->machine, 4);
    expectSameRun(direct, replayed);
}

TEST_F(EstimatorRun, CaptureAnnotationsSurviveBytesAndRejectReorder)
{
    const auto store = captureEstimatorStore(*prog, "rsr40", *cfg,
                                             rankedOpts(), "twolf");
    // The v2 index round-trips every capture annotation: estimator
    // options, candidate-pool size, and the per-cluster groups that
    // drive rankedSetEstimate() on replay.
    const auto reloaded =
        core::LivePointStore::deserialize(store.serialize());
    EXPECT_EQ(reloaded.meta().estimator.kind,
              SamplingPolicyKind::RankedSet);
    EXPECT_EQ(reloaded.meta().candidateCount, 48u);
    ASSERT_EQ(reloaded.entries().size(), store.entries().size());
    for (std::size_t i = 0; i < store.entries().size(); ++i)
        EXPECT_EQ(reloaded.entries()[i].group,
                  store.entries()[i].group)
            << i;

    // Reordering two adjacent differing 8-byte words of the index
    // payload (container header 24 bytes + index frame header 24
    // bytes) is the byte-level image of a member-order mismatch in
    // the index's snapshot()/restore() pair; the position-sensitive
    // index checksum must reject the store rather than misparse it.
    auto bytes = store.serialize();
    ASSERT_GE(bytes.size(), 64u);
    bool swapped = false;
    for (std::size_t off = 48; off + 16 <= bytes.size() && !swapped;
         off += 8) {
        const auto word =
            bytes.begin() + static_cast<std::ptrdiff_t>(off);
        if (std::equal(word, word + 8, word + 8))
            continue;
        std::swap_ranges(word, word + 8, word + 8);
        swapped = true;
    }
    ASSERT_TRUE(swapped);
    EXPECT_THROW(core::LivePointStore::deserialize(std::move(bytes)),
                 CorruptInputError);
}

TEST_F(EstimatorRun, ConfigHashSeparatesEstimators)
{
    const auto base = core::LivePointStore::configHash(
        "twolf", "smarts", *cfg);
    EstimatorOptions uniform;
    EXPECT_EQ(core::LivePointStore::configHash("twolf", "smarts", *cfg,
                                               uniform, 12),
              base);
    const auto ranked = core::LivePointStore::configHash(
        "twolf", "smarts", *cfg, rankedOpts(), 48);
    EXPECT_NE(ranked, base);
    auto reseeded = rankedOpts();
    reseeded.rankSeed ^= 1;
    EXPECT_NE(core::LivePointStore::configHash("twolf", "smarts", *cfg,
                                               reseeded, 48),
              ranked);
}

TEST_F(EstimatorRun, OversizedCandidatePoolIsAUserError)
{
    core::SampledConfig small = *cfg;
    small.totalInsts = 50'000; // 48 candidates x 2000 insts don't fit
    EXPECT_THROW(
        runEstimator(*prog, "smarts", small, rankedOpts(), 1),
        UserError);
}

} // namespace
} // namespace rsr::harness
