/**
 * @file
 * SimPoint substrate tests: BBV profiling, random projection, k-means
 * with BIC selection, representative-point choice, and the end-to-end
 * SimPoint estimate.
 */

#include <gtest/gtest.h>

#include <cmath>

#include <cmath>

#include "core/sampled_sim.hh"
#include "simpoint/simpoint.hh"
#include "util/random.hh"
#include "workload/program_builder.hh"
#include "workload/synthetic.hh"

namespace rsr::simpoint
{
namespace
{

using workload::Label;
using workload::ProgramBuilder;

/** Two-phase program: phase A loop then phase B loop, very different. */
func::Program
twoPhaseProgram()
{
    ProgramBuilder b;
    b.addi(1, 0, 0);
    b.loadImm64(5, 2000);
    Label phase_a = b.here();
    b.addi(2, 2, 1);
    b.addi(2, 2, 1);
    b.addi(2, 2, 1);
    b.addi(1, 1, 1);
    b.branch(isa::Opcode::Blt, 1, 5, phase_a);
    b.addi(1, 0, 0);
    Label phase_b = b.here();
    b.rtype(isa::Opcode::Mul, 3, 3, 2);
    b.rtype(isa::Opcode::Mul, 3, 3, 2);
    b.rtype(isa::Opcode::Xor, 3, 3, 2);
    b.addi(1, 1, 1);
    b.branch(isa::Opcode::Blt, 1, 5, phase_b);
    b.jump(phase_a); // alternate forever... but r1 keeps rising
    return b.build("twophase");
}

TEST(Bbv, IntervalCountMatchesRun)
{
    const auto prog =
        workload::buildSynthetic(workload::standardWorkloadParams("twolf"));
    const auto prof = profileBbv(prog, 50'000, 1000);
    EXPECT_EQ(prof.intervalSize, 1000u);
    EXPECT_EQ(prof.intervals.size(), 50u);
    for (const auto &iv : prof.intervals)
        EXPECT_EQ(iv.totalInsts, 1000u);
}

TEST(Bbv, CountsSumToIntervalSize)
{
    const auto prog =
        workload::buildSynthetic(workload::standardWorkloadParams("gcc"));
    const auto prof = profileBbv(prog, 20'000, 2000);
    for (const auto &iv : prof.intervals) {
        std::uint64_t sum = 0;
        for (const auto &[block, count] : iv.counts)
            sum += count;
        EXPECT_EQ(sum, iv.totalInsts);
    }
}

TEST(Bbv, DiscoversMultipleBlocks)
{
    const auto prog =
        workload::buildSynthetic(workload::standardWorkloadParams("gcc"));
    const auto prof = profileBbv(prog, 50'000, 1000);
    EXPECT_GT(prof.numBlocks, 50u);
}

TEST(Bbv, ProjectionShapeAndDeterminism)
{
    const auto prog =
        workload::buildSynthetic(workload::standardWorkloadParams("twolf"));
    const auto prof = profileBbv(prog, 20'000, 1000);
    const auto v1 = projectBbv(prof, 15, 99);
    const auto v2 = projectBbv(prof, 15, 99);
    const auto v3 = projectBbv(prof, 15, 100);
    ASSERT_EQ(v1.size(), prof.intervals.size());
    ASSERT_EQ(v1[0].size(), 15u);
    EXPECT_EQ(v1, v2);
    EXPECT_NE(v1, v3);
}

TEST(Bbv, SimilarIntervalsProjectClose)
{
    // Phase A intervals should be mutually closer than A-to-B distances.
    const auto prog = twoPhaseProgram();
    const auto prof = profileBbv(prog, 20'000, 1000);
    const auto v = projectBbv(prof, 15, 7);
    auto d2 = [&](std::size_t a, std::size_t b) {
        double s = 0;
        for (std::size_t i = 0; i < v[a].size(); ++i)
            s += (v[a][i] - v[b][i]) * (v[a][i] - v[b][i]);
        return s;
    };
    // Intervals 0..8 are phase A (10k insts), 10..18 phase B.
    EXPECT_LT(d2(1, 2), d2(1, 12));
    EXPECT_LT(d2(12, 13), d2(2, 13));
}

TEST(Kmeans, SeparatesObviousClusters)
{
    std::vector<std::vector<double>> data;
    for (int i = 0; i < 30; ++i)
        data.push_back({0.0 + i * 0.001, 0.0});
    for (int i = 0; i < 30; ++i)
        data.push_back({10.0 + i * 0.001, 0.0});
    const auto c = kmeans(data, 2, 42);
    EXPECT_EQ(c.k, 2u);
    // All of the first 30 together, all of the last 30 together.
    for (int i = 1; i < 30; ++i)
        EXPECT_EQ(c.assignment[i], c.assignment[0]);
    for (int i = 31; i < 60; ++i)
        EXPECT_EQ(c.assignment[i], c.assignment[30]);
    EXPECT_NE(c.assignment[0], c.assignment[30]);
}

TEST(Kmeans, SizesSumToPoints)
{
    std::vector<std::vector<double>> data;
    for (int i = 0; i < 50; ++i)
        data.push_back({double(i % 7), double(i % 3)});
    const auto c = kmeans(data, 5, 1);
    std::uint64_t total = 0;
    for (auto s : c.sizes)
        total += s;
    EXPECT_EQ(total, data.size());
}

TEST(Kmeans, KClampedToDataSize)
{
    std::vector<std::vector<double>> data{{0.0}, {1.0}, {2.0}};
    const auto c = kmeans(data, 10, 3);
    EXPECT_LE(c.k, 3u);
}

TEST(Kmeans, BicPrefersTrueK)
{
    // Three well-separated blobs: BIC-based selection should not pick 1.
    std::vector<std::vector<double>> data;
    Rng rng(5);
    for (double center : {0.0, 50.0, 100.0})
        for (int i = 0; i < 40; ++i)
            data.push_back(
                {center + rng.uniform(), center / 2 + rng.uniform()});
    const auto best = pickClustering(data, 10, 17);
    EXPECT_GE(best.k, 3u);
    EXPECT_LE(best.k, 5u);
}

TEST(Kmeans, RepresentativesBelongToTheirClusters)
{
    std::vector<std::vector<double>> data;
    Rng rng(6);
    for (int i = 0; i < 100; ++i)
        data.push_back({rng.uniform() * 10, rng.uniform() * 10});
    const auto c = kmeans(data, 4, 3);
    const auto reps = representativePoints(data, c);
    ASSERT_EQ(reps.size(), c.k);
    for (unsigned j = 0; j < c.k; ++j) {
        if (c.sizes[j] > 0) {
            EXPECT_EQ(c.assignment[reps[j]], static_cast<int>(j));
        }
    }
}

TEST(SimPoint, SelectionWeightsSumToOne)
{
    const auto prog =
        workload::buildSynthetic(workload::standardWorkloadParams("twolf"));
    SimPointConfig cfg;
    cfg.intervalSize = 1000;
    cfg.maxK = 10;
    const auto sel = pickSimPoints(prog, 100'000, cfg);
    ASSERT_GT(sel.k, 0u);
    ASSERT_EQ(sel.intervals.size(), sel.weights.size());
    double total = 0;
    for (double w : sel.weights)
        total += w;
    EXPECT_NEAR(total, 1.0, 1e-9);
    for (std::size_t i = 1; i < sel.intervals.size(); ++i)
        EXPECT_GT(sel.intervals[i], sel.intervals[i - 1]);
}

TEST(SimPoint, RunProducesEstimate)
{
    const auto prog =
        workload::buildSynthetic(workload::standardWorkloadParams("twolf"));
    SimPointConfig cfg;
    cfg.intervalSize = 1000;
    cfg.maxK = 10;
    const auto sel = pickSimPoints(prog, 100'000, cfg);
    const auto mc = core::MachineConfig::scaledDefault();
    const auto r = runSimPoints(prog, sel, false, mc);
    EXPECT_GT(r.ipc, 0.0);
    EXPECT_LT(r.ipc, 8.0);
    EXPECT_EQ(r.hotInsts, sel.k * cfg.intervalSize);
}

TEST(SimPoint, WarmupChangesEstimate)
{
    const auto prog =
        workload::buildSynthetic(workload::standardWorkloadParams("twolf"));
    SimPointConfig cfg;
    cfg.intervalSize = 1000;
    cfg.maxK = 10;
    const auto sel = pickSimPoints(prog, 100'000, cfg);
    const auto mc = core::MachineConfig::scaledDefault();
    const auto cold = runSimPoints(prog, sel, false, mc);
    const auto warm = runSimPoints(prog, sel, true, mc);
    EXPECT_NE(cold.ipc, warm.ipc);
}

TEST(SimPoint, EstimateWithWarmupReasonable)
{
    // Small-interval SimPoint with SMARTS warming should land within a
    // loose band of the true IPC (the paper's 50K-SMARTS case).
    const auto prog =
        workload::buildSynthetic(workload::standardWorkloadParams("twolf"));
    const auto mc = core::MachineConfig::scaledDefault();
    const std::uint64_t total = 300'000;
    const double true_ipc = core::runFull(prog, total, mc).ipc();
    SimPointConfig cfg;
    cfg.intervalSize = 1000;
    cfg.maxK = 30;
    const auto sel = pickSimPoints(prog, total, cfg);
    const auto r = runSimPoints(prog, sel, true, mc);
    EXPECT_LT(std::fabs(r.ipc - true_ipc) / true_ipc, 0.35);
}

} // namespace
} // namespace rsr::simpoint
