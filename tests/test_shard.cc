/**
 * @file
 * Tests for process-sharded campaigns: the fcntl claim table's
 * cross-process exclusivity (which requires actual fork()ed processes —
 * POSIX record locks do not exclude within one process), shard-count
 * invariance of every deterministic result field, and the headline
 * fault-tolerance property: SIGKILL a shard worker mid-run and a resume
 * pass finishes the campaign with no lost or duplicated measurements.
 *
 * These tests fork; they must not run under TSan (its runtime dies in
 * forked children) and are kept out of the CI TSan shard on purpose.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <map>
#include <string>
#include <vector>

#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include "harness/campaign.hh"
#include "harness/manifest.hh"
#include "harness/shard.hh"
#include "util/fileio.hh"

namespace rsr
{
namespace
{

/** A small, fast sharded campaign rooted at a fresh temp directory. */
harness::CampaignConfig
shardCampaign(const char *tag)
{
    harness::CampaignConfig cfg;
    cfg.outDir =
        std::string(::testing::TempDir()) + "/rsr_shard_" + tag;
    cfg.workloads = {"twolf", "gcc"};
    cfg.policies = {"none", "smarts", "rsr40"};
    cfg.insts = 60'000;
    cfg.clusters = 3;
    cfg.clusterSize = 500;
    cfg.machine = core::MachineConfig::scaledDefault();
    cfg.threads = 1;
    cfg.maxRetries = 0;
    cfg.backoffMs = 1;
    std::filesystem::remove_all(cfg.outDir);
    return cfg;
}

/** Latest manifest record per job id, plus Complete-record counts. */
struct Journal
{
    std::map<std::uint64_t, harness::JobRecord> latest;
    std::map<std::uint64_t, unsigned> completeCount;
};

Journal
readJournal(const std::string &out_dir)
{
    Journal j;
    const std::string path =
        harness::CampaignRunner::manifestPath(out_dir);
    const harness::ManifestState state = harness::loadManifest(path);
    j.latest = state.jobs;
    const auto bytes = readFileBytes(path);
    std::string line;
    for (const char c : std::string(bytes.begin(), bytes.end())) {
        if (c != '\n') {
            line += c;
            continue;
        }
        if (line.find("\"status\"") != std::string::npos) {
            const harness::JobRecord r = harness::parseJobRecord(line);
            if (r.status == harness::JobStatus::Complete)
                ++j.completeCount[r.id];
        }
        line.clear();
    }
    return j;
}

TEST(ShardClaims, SingleProcessOwnsEveryJob)
{
    const std::string path = std::string(::testing::TempDir()) +
                             "/rsr_claims_single.tbl";
    std::remove(path.c_str());
    harness::ShardClaimTable table(path, 8);
    for (std::uint64_t id = 0; id < 8; ++id)
        EXPECT_TRUE(table.tryClaim(id)) << "job " << id;
    // fcntl record locks do not exclude within one process, so a second
    // claim from the same process also succeeds — exactly the behavior
    // the single-process campaign path relies on.
    EXPECT_TRUE(table.tryClaim(0));
}

TEST(ShardClaims, ExcludesAcrossProcessesUntilOwnerDies)
{
    const std::string path = std::string(::testing::TempDir()) +
                             "/rsr_claims_fork.tbl";
    std::remove(path.c_str());
    { harness::ShardClaimTable create(path, 4); }

    int claimed_pipe[2], go_pipe[2];
    ASSERT_EQ(::pipe(claimed_pipe), 0);
    ASSERT_EQ(::pipe(go_pipe), 0);
    const pid_t pid = ::fork();
    ASSERT_GE(pid, 0);
    if (pid == 0) {
        // Child: claim job 0, tell the parent, hold the claim until the
        // parent says go, then exit (releasing it). No gtest in here —
        // a forked child must not unwind into the parent's test state.
        ::close(claimed_pipe[0]);
        ::close(go_pipe[1]);
        int status = 0;
        char go;
        {
            harness::ShardClaimTable mine(path, 4);
            if (!mine.tryClaim(0))
                status = 1;
            if (::write(claimed_pipe[1], "c", 1) != 1)
                status = 2;
            if (::read(go_pipe[0], &go, 1) != 1)
                status = 3;
        }
        ::_exit(status);
    }
    ::close(claimed_pipe[1]);
    ::close(go_pipe[0]);
    char c;
    ASSERT_EQ(::read(claimed_pipe[0], &c, 1), 1);

    harness::ShardClaimTable table(path, 4);
    EXPECT_FALSE(table.tryClaim(0)); // the child holds it, alive
    EXPECT_TRUE(table.tryClaim(1));  // other jobs stay claimable

    ASSERT_EQ(::write(go_pipe[1], "g", 1), 1);
    int wstatus = 0;
    ASSERT_EQ(::waitpid(pid, &wstatus, 0), pid);
    EXPECT_TRUE(WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0);

    // The owner is gone; the kernel released its claim with it.
    EXPECT_TRUE(table.tryClaim(0));
    ::close(claimed_pipe[0]);
    ::close(go_pipe[1]);
}

TEST(ShardedCampaign, FourShardsCompleteTheWholeMatrix)
{
    harness::CampaignConfig cfg = shardCampaign("four");
    harness::ShardOptions opts;
    opts.shards = 4;
    const harness::CampaignResult r =
        harness::runShardedCampaign(cfg, opts);
    EXPECT_EQ(r.total, 6u);
    EXPECT_TRUE(r.allComplete()) << "completed " << r.completed
                                 << " skipped " << r.skipped;

    const Journal j = readJournal(cfg.outDir);
    for (std::uint64_t id = 0; id < r.total; ++id) {
        ASSERT_NE(j.latest.find(id), j.latest.end()) << "job " << id;
        const harness::JobRecord &rec = j.latest.at(id);
        EXPECT_EQ(rec.status, harness::JobStatus::Complete);
        // Exactly one Complete record: claimed once, measured once.
        EXPECT_EQ(j.completeCount.at(id), 1u) << "job " << id;
        EXPECT_TRUE(std::filesystem::is_regular_file(
            cfg.outDir + "/" + rec.resultFile))
            << rec.resultFile;
    }
}

TEST(ShardedCampaign, DeterministicFieldsInvariantAcrossShardCounts)
{
    harness::CampaignConfig one = shardCampaign("inv1");
    harness::ShardOptions opts1;
    opts1.shards = 1;
    ASSERT_TRUE(harness::runShardedCampaign(one, opts1).allComplete());

    harness::CampaignConfig four = shardCampaign("inv4");
    harness::ShardOptions opts4;
    opts4.shards = 4;
    ASSERT_TRUE(harness::runShardedCampaign(four, opts4).allComplete());

    const Journal a = readJournal(one.outDir);
    const Journal b = readJournal(four.outDir);
    ASSERT_EQ(a.latest.size(), b.latest.size());
    for (const auto &[id, rec] : a.latest) {
        const harness::JobRecord &other = b.latest.at(id);
        EXPECT_EQ(rec.workload, other.workload) << "job " << id;
        EXPECT_EQ(rec.policy, other.policy) << "job " << id;
        // The measured IPC is bit-identical no matter which worker
        // process ran the job; only timing fields may differ.
        EXPECT_EQ(rec.ipc, other.ipc) << "job " << id;
    }
}

TEST(ShardedCampaign, KilledWorkerLosesNothingAfterResume)
{
    harness::CampaignConfig cfg = shardCampaign("kill");

    // One worker, SIGKILLed as soon as it exists: the run must stop with
    // unfinished jobs journaled as such, never as phantom completions.
    harness::ShardOptions first;
    first.shards = 1;
    first.onWorkersStarted = [](const std::vector<pid_t> &pids) {
        ASSERT_EQ(pids.size(), 1u);
        ::kill(pids[0], SIGKILL);
    };
    const harness::CampaignResult r1 =
        harness::runShardedCampaign(cfg, first);
    EXPECT_EQ(r1.total, 6u);
    EXPECT_GT(r1.stopped, 0u);
    EXPECT_FALSE(r1.allComplete());

    // Resume with four shards: the dead worker's claims died with it, so
    // exactly the unfinished jobs are rerun.
    harness::ShardOptions second;
    second.shards = 4;
    second.resume = true;
    const harness::CampaignResult r2 =
        harness::runShardedCampaign(cfg, second);
    EXPECT_TRUE(r2.allComplete())
        << "completed " << r2.completed << " skipped " << r2.skipped
        << " failed " << r2.failed << " stopped " << r2.stopped;

    // No lost and no duplicated measurements: every job has exactly one
    // Complete record and its artifact on disk.
    const Journal j = readJournal(cfg.outDir);
    for (std::uint64_t id = 0; id < r2.total; ++id) {
        ASSERT_NE(j.latest.find(id), j.latest.end()) << "job " << id;
        EXPECT_EQ(j.latest.at(id).status, harness::JobStatus::Complete);
        EXPECT_EQ(j.completeCount.at(id), 1u) << "job " << id;
        EXPECT_TRUE(std::filesystem::is_regular_file(
            cfg.outDir + "/" + j.latest.at(id).resultFile));
    }
}

} // namespace
} // namespace rsr
