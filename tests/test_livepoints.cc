/**
 * @file
 * Live-point (checkpointed sampling) tests: capture/replay equivalence,
 * core-parameter sweeps over one capture, serialization round-trips, and
 * state-restoration fidelity.
 */

#include <gtest/gtest.h>

#include "core/livepoints.hh"
#include "core/warmup.hh"
#include "util/random.hh"
#include "util/serial.hh"
#include "util/snapshot.hh"
#include "workload/synthetic.hh"

namespace rsr::core
{
namespace
{

class LivePoints : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        prog = new func::Program(workload::buildSynthetic(
            workload::standardWorkloadParams("twolf")));
        cfg = new SampledConfig();
        cfg->totalInsts = 300'000;
        cfg->regimen = {10, 2000};
        cfg->machine = MachineConfig::scaledDefault();

        auto smarts = FunctionalWarmup::smarts();
        lib = new LivePointLibrary(
            LivePointLibrary::capture(*prog, *smarts, *cfg));
        auto smarts2 = FunctionalWarmup::smarts();
        reference = new SampledResult(runSampled(*prog, *smarts2, *cfg));
    }

    static void
    TearDownTestSuite()
    {
        delete prog;
        delete cfg;
        delete lib;
        delete reference;
    }

    static func::Program *prog;
    static SampledConfig *cfg;
    static LivePointLibrary *lib;
    static SampledResult *reference;
};

func::Program *LivePoints::prog = nullptr;
SampledConfig *LivePoints::cfg = nullptr;
LivePointLibrary *LivePoints::lib = nullptr;
SampledResult *LivePoints::reference = nullptr;

TEST_F(LivePoints, CaptureShapes)
{
    ASSERT_EQ(lib->points().size(), cfg->regimen.numClusters);
    for (const auto &lp : lib->points()) {
        EXPECT_EQ(lp.trace.size(), cfg->regimen.clusterSize);
        EXPECT_GT(lp.machineState.size(), 0u);
    }
    EXPECT_GT(lib->storageBytes(), 0u);
}

TEST_F(LivePoints, ReplayMatchesSampledRunExactly)
{
    // Under SMARTS warming the snapshot fully determines the cluster's
    // initial state, so replay must reproduce per-cluster IPCs
    // bit-exactly.
    const auto r = lib->replay();
    ASSERT_EQ(r.clusterIpc.size(), reference->clusterIpc.size());
    for (std::size_t i = 0; i < r.clusterIpc.size(); ++i)
        EXPECT_DOUBLE_EQ(r.clusterIpc[i], reference->clusterIpc[i]) << i;
    EXPECT_EQ(r.hotCycles, reference->hotCycles);
    EXPECT_EQ(r.branchMispredicts, reference->branchMispredicts);
}

TEST_F(LivePoints, ReplayIsCheaperThanSampledRun)
{
    // Replay skips all functional fast-forwarding; even on a tiny run it
    // should be well under the full sampled time.
    const auto r = lib->replay();
    EXPECT_LT(r.seconds, reference->seconds);
}

TEST_F(LivePoints, CoreSweepOverOneCapture)
{
    // The core configuration may vary per replay: narrower machines must
    // not be faster than wider ones.
    auto narrow = cfg->machine.core;
    narrow.issueWidth = 1;
    narrow.fetchWidth = 2;
    narrow.dispatchWidth = 2;
    auto wide = cfg->machine.core;
    wide.issueWidth = 8;
    wide.numFUs = 8;
    const auto rn = lib->replay(narrow);
    const auto rw = lib->replay(wide);
    EXPECT_LT(rn.estimate.mean, rw.estimate.mean);
    EXPECT_GT(rn.hotCycles, rw.hotCycles);
}

TEST_F(LivePoints, SerializeRoundTrip)
{
    const auto bytes = lib->serialize();
    const auto copy = LivePointLibrary::deserialize(bytes);
    ASSERT_EQ(copy.points().size(), lib->points().size());
    for (std::size_t i = 0; i < copy.points().size(); ++i) {
        EXPECT_EQ(copy.points()[i].clusterStart,
                  lib->points()[i].clusterStart);
        EXPECT_EQ(copy.points()[i].machineState,
                  lib->points()[i].machineState);
        ASSERT_EQ(copy.points()[i].trace.size(),
                  lib->points()[i].trace.size());
    }
    const auto r1 = lib->replay();
    const auto r2 = copy.replay();
    for (std::size_t i = 0; i < r1.clusterIpc.size(); ++i)
        EXPECT_DOUBLE_EQ(r1.clusterIpc[i], r2.clusterIpc[i]);
}

TEST_F(LivePoints, ReplayDeterministic)
{
    const auto r1 = lib->replay();
    const auto r2 = lib->replay();
    EXPECT_EQ(r1.hotCycles, r2.hotCycles);
}

TEST(SerialHelpers, PrimitivesRoundTrip)
{
    ByteSink out;
    out.putU8(0xab);
    out.putU32(0xdeadbeef);
    out.putU64(0x0123456789abcdefull);
    const char payload[] = "hello";
    out.putBytes(payload, sizeof(payload));

    ByteSource in(out.bytes());
    EXPECT_EQ(in.getU8(), 0xabu);
    EXPECT_EQ(in.getU32(), 0xdeadbeefu);
    EXPECT_EQ(in.getU64(), 0x0123456789abcdefull);
    char back[sizeof(payload)];
    in.getBytes(back, sizeof(back));
    EXPECT_STREQ(back, "hello");
    EXPECT_TRUE(in.exhausted());
}

TEST(SerialHelpers, UnderrunThrowsInternalError)
{
    ByteSink out;
    out.putU8(1);
    ByteSource in(out.bytes());
    in.getU8();
    EXPECT_THROW(in.getU8(), InternalError);
}

TEST(CacheCheckpoint, StateRoundTrip)
{
    cache::CacheParams p;
    p.sizeBytes = 64 * 4 * 8;
    p.assoc = 4;
    p.lineBytes = 64;
    p.writePolicy = cache::WritePolicy::WriteBackAllocate;
    cache::Cache a(p), b(p);
    Rng rng(3);
    for (int i = 0; i < 500; ++i)
        a.access(rng.below(200) * 64, rng.chance(0.4));

    restoreFromBytes(b, snapshotToBytes(a));
    for (std::uint64_t line = 0; line < 200; ++line) {
        ASSERT_EQ(a.probe(line * 64), b.probe(line * 64)) << line;
        ASSERT_EQ(a.recencyOf(line * 64), b.recencyOf(line * 64)) << line;
    }
}

TEST(PredictorCheckpoint, StateRoundTrip)
{
    branch::PredictorParams pp;
    pp.phtEntries = 512;
    pp.historyBits = 9;
    pp.btbEntries = 32;
    pp.rasEntries = 4;
    branch::GsharePredictor a(pp), b(pp);
    Rng rng(4);
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t pc = 0x1000 + 4 * rng.below(512);
        a.warmApply(pc, isa::BranchKind::Conditional, rng.chance(0.7),
                    pc + 64);
    }
    a.rasPush(0x123);
    a.rasPush(0x456);

    restoreFromBytes(b, snapshotToBytes(a));
    EXPECT_EQ(a.ghr(), b.ghr());
    EXPECT_EQ(a.rasContents(), b.rasContents());
    for (unsigned i = 0; i < pp.phtEntries; ++i)
        ASSERT_EQ(a.phtEntry(i), b.phtEntry(i));
    for (unsigned i = 0; i < pp.btbEntries; ++i) {
        ASSERT_EQ(a.btbEntryValid(i), b.btbEntryValid(i));
        if (a.btbEntryValid(i)) {
            ASSERT_EQ(a.btbEntryTag(i), b.btbEntryTag(i));
            ASSERT_EQ(a.btbEntryTarget(i), b.btbEntryTarget(i));
        }
    }
}

} // namespace
} // namespace rsr::core
