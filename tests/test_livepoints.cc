/**
 * @file
 * Live-point store tests: the content-addressed blob container's
 * validation and corruption detection, producer/consumer equivalence
 * (replay-from-store must reproduce the direct deferred run bit-exactly,
 * Table-2 wide), serialization round-trips, core-parameter sweeps over
 * one capture, and state-restoration fidelity of the underlying
 * Snapshotables.
 */

#include <gtest/gtest.h>

#include <ios>
#include <sstream>

#include "branch/predictor.hh"
#include "cache/cache.hh"
#include "core/livepoint_store.hh"
#include "core/warmup.hh"
#include "harness/parallel_run.hh"
#include "util/error.hh"
#include "util/random.hh"
#include "util/serial.hh"
#include "util/snapshot.hh"
#include "workload/synthetic.hh"

namespace rsr::core
{
namespace
{

// ---------------------------------------------------------------- blobs

std::vector<std::uint8_t>
someBytes(std::uint8_t seed, std::size_t n)
{
    std::vector<std::uint8_t> v(n);
    for (std::size_t i = 0; i < n; ++i)
        v[i] = static_cast<std::uint8_t>(seed + i * 7);
    return v;
}

TEST(ContentStore, RoundTripPreservesIndexAndBlobs)
{
    BlobStoreWriter w;
    const auto a = someBytes(1, 100);
    const auto b = someBytes(2, 50);
    const std::uint64_t ha = w.add(a);
    const std::uint64_t hb = w.add(b);
    EXPECT_NE(ha, hb);
    const std::vector<std::uint8_t> index{'i', 'd', 'x'};
    const auto file = w.finish(index);

    BlobStoreReader r(file);
    EXPECT_EQ(r.index(), index);
    EXPECT_EQ(r.blob(ha), a);
    EXPECT_EQ(r.blob(hb), b);
    EXPECT_EQ(r.blobCount(), 2u);
    EXPECT_EQ(r.storedBytes(), 150u);
    EXPECT_EQ(r.fileBytes(), file);
}

TEST(ContentStore, IdenticalPayloadsDedupToOneBlob)
{
    BlobStoreWriter w;
    const auto a = someBytes(9, 200);
    const std::uint64_t h1 = w.add(a);
    const std::uint64_t h2 = w.add(a);
    EXPECT_EQ(h1, h2);
    EXPECT_EQ(w.blobCount(), 1u);
    EXPECT_EQ(w.storedBytes(), 200u);
    EXPECT_EQ(w.addedBytes(), 400u);
    EXPECT_EQ(w.addedCount(), 2u);
}

TEST(ContentStore, TruncatedFileThrowsCorruptInput)
{
    BlobStoreWriter w;
    w.add(someBytes(3, 64));
    auto file = w.finish(someBytes(4, 32));
    // Shorter than the fixed header: unreadable outright.
    std::vector<std::uint8_t> stub(file.begin(), file.begin() + 10);
    EXPECT_THROW(BlobStoreReader{stub}, CorruptInputError);
    // Torn mid-index: the declared index length overruns the file.
    std::vector<std::uint8_t> torn(file.begin(), file.begin() + 30);
    EXPECT_THROW(BlobStoreReader{torn}, CorruptInputError);
    // Torn mid-blob-table.
    file.resize(file.size() - 5);
    EXPECT_THROW(BlobStoreReader{file}, CorruptInputError);
}

TEST(ContentStore, BitFlipAnywhereThrowsCorruptInput)
{
    BlobStoreWriter w;
    w.add(someBytes(5, 64));
    const auto file = w.finish(someBytes(6, 32));
    // Every single-bit flip outside the version word must be caught by
    // the index checksum, a blob content hash, or a bounds check. (The
    // version word has its own dedicated error; see VersionSkew below.)
    for (std::size_t pos : {std::size_t{0}, file.size() / 3,
                            file.size() / 2, file.size() - 1}) {
        auto bad = file;
        bad[pos] ^= 0x10;
        EXPECT_THROW(BlobStoreReader{bad}, CorruptInputError) << pos;
    }
}

TEST(ContentStore, VersionSkewNamesBothVersions)
{
    BlobStoreWriter w;
    w.add(someBytes(7, 16));
    auto file = w.finish({});
    file[4] += 1; // the little-endian version word follows the magic
    try {
        BlobStoreReader r(file);
        FAIL() << "version skew accepted";
    } catch (const CorruptInputError &e) {
        const std::string msg = e.what();
        EXPECT_NE(msg.find("version"), std::string::npos) << msg;
    }
}

TEST(ContentStore, TrailingBytesThrowCorruptInput)
{
    BlobStoreWriter w;
    w.add(someBytes(8, 16));
    auto file = w.finish({});
    file.push_back(0);
    EXPECT_THROW(BlobStoreReader{file}, CorruptInputError);
}

TEST(ContentStore, UnknownHashLookupThrowsCorruptInput)
{
    BlobStoreWriter w;
    const std::uint64_t h = w.add(someBytes(1, 8));
    BlobStoreReader r(w.finish({}));
    EXPECT_NO_THROW(r.blob(h));
    EXPECT_THROW(r.blob(h ^ 1), CorruptInputError);
}

// ----------------------------------------------------------- live-points

class LivePoints : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        prog = new func::Program(workload::buildSynthetic(
            workload::standardWorkloadParams("twolf")));
        cfg = new SampledConfig();
        cfg->totalInsts = 300'000;
        cfg->regimen = {10, 2000};
        cfg->machine = MachineConfig::scaledDefault();

        auto smarts = FunctionalWarmup::smarts();
        store = new LivePointStore(LivePointStore::create(
            *prog, *smarts, *cfg, "twolf", "smarts"));
        // The deferred estimator the capture pass mirrors: a direct
        // runSampledParallel with one worker.
        auto smarts2 = FunctionalWarmup::smarts();
        reference = new SampledResult(
            harness::runSampledParallel(*prog, *smarts2, *cfg, 1));
    }

    static void
    TearDownTestSuite()
    {
        delete prog;
        delete cfg;
        delete store;
        delete reference;
    }

    static func::Program *prog;
    static SampledConfig *cfg;
    static LivePointStore *store;
    static SampledResult *reference;
};

func::Program *LivePoints::prog = nullptr;
SampledConfig *LivePoints::cfg = nullptr;
LivePointStore *LivePoints::store = nullptr;
SampledResult *LivePoints::reference = nullptr;

TEST_F(LivePoints, CaptureShapes)
{
    ASSERT_EQ(store->clusterCount(), cfg->regimen.numClusters);
    EXPECT_EQ(store->meta().workload, "twolf");
    EXPECT_EQ(store->meta().policy, "smarts");
    EXPECT_EQ(store->meta().totalInsts, cfg->totalInsts);
    for (std::size_t i = 0; i < store->clusterCount(); ++i) {
        const auto task = store->makeReplayTask(i);
        EXPECT_EQ(task.index, i);
        EXPECT_EQ(task.trace.size(), cfg->regimen.clusterSize) << i;
        EXPECT_GT(task.machineState.size(), 0u) << i;
        // SMARTS carries no measurement context; the entry says so.
        EXPECT_FALSE(store->entries()[i].hasContext) << i;
        EXPECT_EQ(task.context, nullptr) << i;
    }
    EXPECT_GT(store->serialize().size(), 0u);
    EXPECT_GE(store->dedupRatio(), 1.0);
    EXPECT_GT(store->bytesPerCluster(), 0.0);
}

TEST_F(LivePoints, TraceSequenceNumbersAreContiguousFromFirstSeq)
{
    for (std::size_t i = 0; i < store->clusterCount(); ++i) {
        const auto task = store->makeReplayTask(i);
        std::uint64_t seq = store->entries()[i].firstSeq;
        for (const auto &d : task.trace)
            EXPECT_EQ(d.seq, seq++) << i;
    }
}

TEST_F(LivePoints, ReplayMatchesDeferredRunExactly)
{
    // The snapshot + context fully determine the cluster's initial
    // state, so replay must reproduce per-cluster IPCs bit-exactly.
    const auto r = store->replay();
    ASSERT_EQ(r.clusterIpc.size(), reference->clusterIpc.size());
    for (std::size_t i = 0; i < r.clusterIpc.size(); ++i)
        EXPECT_DOUBLE_EQ(r.clusterIpc[i], reference->clusterIpc[i]) << i;
    EXPECT_EQ(r.hotCycles, reference->hotCycles);
    EXPECT_EQ(r.branchMispredicts, reference->branchMispredicts);
    EXPECT_DOUBLE_EQ(r.estimate.mean, reference->estimate.mean);
    EXPECT_DOUBLE_EQ(r.estimate.ciLow, reference->estimate.ciLow);
}

TEST_F(LivePoints, ReplayWithMeasureContextMatches)
{
    // RSR reconstructs predictor state on demand during measurement; the
    // serialized BranchReconstructionContext must round-trip bit-exactly
    // (the retired LivePointLibrary's documented gap).
    auto rsr = makePolicyByName("rsr40");
    const auto rsr_store = LivePointStore::create(*prog, *rsr, *cfg,
                                                  "twolf", "rsr40");
    auto rsr2 = makePolicyByName("rsr40");
    const auto direct =
        harness::runSampledParallel(*prog, *rsr2, *cfg, 1);

    bool any_context = false;
    for (const auto &e : rsr_store.entries())
        any_context = any_context || e.hasContext;
    EXPECT_TRUE(any_context);

    const auto r = rsr_store.replay();
    ASSERT_EQ(r.clusterIpc.size(), direct.clusterIpc.size());
    for (std::size_t i = 0; i < r.clusterIpc.size(); ++i)
        EXPECT_DOUBLE_EQ(r.clusterIpc[i], direct.clusterIpc[i]) << i;
    EXPECT_EQ(r.branchMispredicts, direct.branchMispredicts);
    // Replay repeats only the measure-time context work; the front
    // half's reconstruction happened once, at capture, and must not
    // recur. So replay's warm-work is positive but strictly below the
    // direct run's combined front-half + measure-time total.
    EXPECT_GT(r.warmWork.reconstructionUpdates, 0u);
    EXPECT_LT(r.warmWork.reconstructionUpdates,
              direct.warmWork.reconstructionUpdates);
}

TEST_F(LivePoints, SerializeRoundTrip)
{
    const auto bytes = store->serialize();
    const auto copy = LivePointStore::deserialize(bytes);
    ASSERT_EQ(copy.clusterCount(), store->clusterCount());
    EXPECT_EQ(copy.storeHash(), store->storeHash());
    EXPECT_EQ(copy.configHash(), store->configHash());
    for (std::size_t i = 0; i < copy.clusterCount(); ++i) {
        EXPECT_EQ(copy.entries()[i].stateHash,
                  store->entries()[i].stateHash);
        EXPECT_EQ(copy.entries()[i].traceHash,
                  store->entries()[i].traceHash);
        EXPECT_EQ(copy.entries()[i].firstSeq,
                  store->entries()[i].firstSeq);
    }
    const auto r1 = store->replay();
    const auto r2 = copy.replay();
    for (std::size_t i = 0; i < r1.clusterIpc.size(); ++i)
        EXPECT_DOUBLE_EQ(r1.clusterIpc[i], r2.clusterIpc[i]);
}

TEST_F(LivePoints, ParallelReplayMatchesSerial)
{
    const auto serial = store->replay();
    const auto parallel = harness::replayStoreParallel(*store, 3);
    ASSERT_EQ(parallel.clusterIpc.size(), serial.clusterIpc.size());
    EXPECT_EQ(parallel.clusterIpc, serial.clusterIpc);
    EXPECT_EQ(parallel.hotCycles, serial.hotCycles);
    EXPECT_DOUBLE_EQ(parallel.estimate.mean, serial.estimate.mean);
}

TEST_F(LivePoints, CoreSweepOverOneCapture)
{
    // The core configuration may vary per replay: narrower machines must
    // not be faster than wider ones.
    auto narrow = cfg->machine;
    narrow.core.issueWidth = 1;
    narrow.core.fetchWidth = 2;
    narrow.core.dispatchWidth = 2;
    auto wide = cfg->machine;
    wide.core.issueWidth = 8;
    wide.core.numFUs = 8;
    const auto rn = store->replay(narrow);
    const auto rw = store->replay(wide);
    EXPECT_LT(rn.estimate.mean, rw.estimate.mean);
    EXPECT_GT(rn.hotCycles, rw.hotCycles);
}

TEST_F(LivePoints, ConfigHashDetectsParameterChanges)
{
    EXPECT_EQ(store->configHash(),
              LivePointStore::configHash("twolf", "smarts", *cfg));
    auto other = *cfg;
    other.regimen.clusterSize += 1;
    EXPECT_NE(store->configHash(),
              LivePointStore::configHash("twolf", "smarts", other));
    EXPECT_NE(store->configHash(),
              LivePointStore::configHash("twolf", "rsr40", *cfg));
    EXPECT_NE(store->configHash(),
              LivePointStore::configHash("gcc", "smarts", *cfg));
}

// ------------------------------------------- Table-2-wide equivalence

/** Hexfloat per-cluster CSV: equal strings mean bit-equal statistics. */
std::string
clusterCsv(const SampledResult &r)
{
    std::ostringstream os;
    os << std::hexfloat;
    os << "cluster,ipc\n";
    for (std::size_t i = 0; i < r.clusterIpc.size(); ++i)
        os << i << "," << r.clusterIpc[i] << "\n";
    os << "mean," << r.estimate.mean << "\n";
    os << "ci," << r.estimate.ciLow << "," << r.estimate.ciHigh << "\n";
    os << "cycles," << r.hotCycles << ",mispred," << r.branchMispredicts
       << "\n";
    return os.str();
}

TEST(LivePointsTable2, ReplayEquivalentForAllPolicies)
{
    // The whole Table-2 matrix: for every warm-up policy, a store
    // captured once and replayed (serially and on workers) must emit a
    // byte-identical statistics CSV to the direct deferred run.
    const auto prog = workload::buildSynthetic(
        workload::standardWorkloadParams("gcc"));
    SampledConfig cfg;
    cfg.totalInsts = 150'000;
    cfg.regimen = {8, 1500};
    cfg.machine = MachineConfig::scaledDefault();

    const char *const table2Names[] = {
        "none",     "fp20",     "fp40",      "fp80", "scache", "sbp",
        "smarts",   "rcache20", "rcache40",  "rcache80", "rcache100",
        "rbp",      "rsr20",    "rsr40",     "rsr80", "rsr100"};
    for (const char *name : table2Names) {
        auto p1 = makePolicyByName(name);
        const auto direct =
            harness::runSampledParallel(prog, *p1, cfg, 1);

        auto p2 = makePolicyByName(name);
        const auto store =
            LivePointStore::create(prog, *p2, cfg, "gcc", name);
        const auto replayed = harness::replayStoreParallel(store, 2);

        EXPECT_EQ(clusterCsv(replayed), clusterCsv(direct)) << name;
    }
}

// --------------------------------------------------- retained fixtures

TEST(SerialHelpers, PrimitivesRoundTrip)
{
    ByteSink out;
    out.putU8(0xab);
    out.putU32(0xdeadbeef);
    out.putU64(0x0123456789abcdefull);
    const char payload[] = "hello";
    out.putBytes(payload, sizeof(payload));

    ByteSource in(out.bytes());
    EXPECT_EQ(in.getU8(), 0xabu);
    EXPECT_EQ(in.getU32(), 0xdeadbeefu);
    EXPECT_EQ(in.getU64(), 0x0123456789abcdefull);
    char back[sizeof(payload)];
    in.getBytes(back, sizeof(back));
    EXPECT_STREQ(back, "hello");
    EXPECT_TRUE(in.exhausted());
}

TEST(SerialHelpers, UnderrunThrowsInternalError)
{
    ByteSink out;
    out.putU8(1);
    ByteSource in(out.bytes());
    in.getU8();
    EXPECT_THROW(in.getU8(), InternalError);
}

TEST(CacheCheckpoint, StateRoundTrip)
{
    cache::CacheParams p;
    p.sizeBytes = 64 * 4 * 8;
    p.assoc = 4;
    p.lineBytes = 64;
    p.writePolicy = cache::WritePolicy::WriteBackAllocate;
    cache::Cache a(p), b(p);
    Rng rng(3);
    for (int i = 0; i < 500; ++i)
        a.access(rng.below(200) * 64, rng.chance(0.4));

    restoreFromBytes(b, snapshotToBytes(a));
    for (std::uint64_t line = 0; line < 200; ++line) {
        ASSERT_EQ(a.probe(line * 64), b.probe(line * 64)) << line;
        ASSERT_EQ(a.recencyOf(line * 64), b.recencyOf(line * 64)) << line;
    }
}

TEST(PredictorCheckpoint, StateRoundTrip)
{
    branch::PredictorParams pp;
    pp.phtEntries = 512;
    pp.historyBits = 9;
    pp.btbEntries = 32;
    pp.rasEntries = 4;
    branch::GsharePredictor a(pp), b(pp);
    Rng rng(4);
    for (int i = 0; i < 1000; ++i) {
        const std::uint64_t pc = 0x1000 + 4 * rng.below(512);
        a.warmApply(pc, isa::BranchKind::Conditional, rng.chance(0.7),
                    pc + 64);
    }
    a.rasPush(0x123);
    a.rasPush(0x456);

    restoreFromBytes(b, snapshotToBytes(a));
    EXPECT_EQ(a.ghr(), b.ghr());
    EXPECT_EQ(a.rasContents(), b.rasContents());
    for (unsigned i = 0; i < pp.phtEntries; ++i)
        ASSERT_EQ(a.phtEntry(i), b.phtEntry(i));
    for (unsigned i = 0; i < pp.btbEntries; ++i) {
        ASSERT_EQ(a.btbEntryValid(i), b.btbEntryValid(i));
        if (a.btbEntryValid(i)) {
            ASSERT_EQ(a.btbEntryTag(i), b.btbEntryTag(i));
            ASSERT_EQ(a.btbEntryTarget(i), b.btbEntryTarget(i));
        }
    }
}

} // namespace
} // namespace rsr::core
