/**
 * @file
 * Counter-inference tests (paper Section 3.2, Figure 3): the a-priori
 * composition table must agree with brute-force enumeration for every
 * reverse history up to length 10, three consecutive identical outcomes
 * must pin the counter exactly, and the tie-break resolution rules must
 * match the paper's prose.
 */

#include <gtest/gtest.h>

#include "core/counter_inference.hh"

#include "branch/predictor.hh"

namespace rsr::core
{
namespace
{

using branch::counter::stronglyNotTaken;
using branch::counter::stronglyTaken;
using branch::counter::weaklyNotTaken;
using branch::counter::weaklyTaken;

/** Feed a newest-first history into the incremental interface. */
CounterInference::StateFn
feed(const CounterInference &ci, const std::vector<bool> &newest_first)
{
    CounterInference::StateFn g = CounterInference::identity;
    for (bool o : newest_first)
        g = ci.observeOlder(g, o);
    return g;
}

TEST(CounterInference, IdentityImageIsAllStates)
{
    const auto &ci = CounterInference::instance();
    EXPECT_EQ(ci.imageOf(CounterInference::identity), 0b1111);
    EXPECT_FALSE(ci.determined(CounterInference::identity));
}

TEST(CounterInference, ThreeTakenPinsToStronglyTaken)
{
    const auto &ci = CounterInference::instance();
    const auto g = feed(ci, {true, true, true});
    EXPECT_TRUE(ci.determined(g));
    EXPECT_EQ(ci.imageOf(g), 1u << stronglyTaken);
}

TEST(CounterInference, ThreeNotTakenPinsToStronglyNotTaken)
{
    const auto &ci = CounterInference::instance();
    const auto g = feed(ci, {false, false, false});
    EXPECT_TRUE(ci.determined(g));
    EXPECT_EQ(ci.imageOf(g), 1u << stronglyNotTaken);
}

TEST(CounterInference, PatternAnywhereInHistoryPins)
{
    // Paper Figure 3, case 3: the pinning run may appear anywhere in the
    // history; later outcomes then evolve the exact value forward.
    const auto &ci = CounterInference::instance();
    // Newest-first: T, N, then three consecutive T (older).
    const auto g = feed(ci, {true, false, true, true, true});
    EXPECT_TRUE(ci.determined(g));
    // Oldest-to-newest: TTT -> 3, then N -> 2, then T -> 3.
    EXPECT_EQ(ci.imageOf(g), 1u << stronglyTaken);
}

TEST(CounterInference, SingleTakenLeavesThreeStates)
{
    const auto &ci = CounterInference::instance();
    const auto g = feed(ci, {true});
    EXPECT_EQ(ci.imageOf(g), 0b1110); // {1, 2, 3}
    EXPECT_FALSE(ci.determined(g));
}

TEST(CounterInference, ResolveExact)
{
    const auto &ci = CounterInference::instance();
    const auto g = feed(ci, {true, true, true});
    const auto r = ci.resolve(g, true, true);
    EXPECT_TRUE(r.known);
    EXPECT_EQ(r.value, stronglyTaken);
}

TEST(CounterInference, ResolveBiasedTakenGivesWeakForm)
{
    const auto &ci = CounterInference::instance();
    // Two takens leave {2,3}: biased taken -> weakly taken.
    const auto g = feed(ci, {true, true});
    EXPECT_EQ(ci.imageOf(g), 0b1100);
    const auto r = ci.resolve(g, true, true);
    EXPECT_TRUE(r.known);
    EXPECT_EQ(r.value, weaklyTaken);
}

TEST(CounterInference, ResolveBiasedNotTakenGivesWeakForm)
{
    const auto &ci = CounterInference::instance();
    const auto g = feed(ci, {false, false});
    EXPECT_EQ(ci.imageOf(g), 0b0011);
    const auto r = ci.resolve(g, true, false);
    EXPECT_TRUE(r.known);
    EXPECT_EQ(r.value, weaklyNotTaken);
}

TEST(CounterInference, ResolveThreeStatesGivesMiddle)
{
    const auto &ci = CounterInference::instance();
    // One taken outcome: {1,2,3} -> middle state 2 (the paper's example:
    // {SNT, WNT, WT} -> WNT is symmetric for the not-taken side).
    auto g = feed(ci, {true});
    auto r = ci.resolve(g, true, true);
    EXPECT_TRUE(r.known);
    EXPECT_EQ(r.value, weaklyTaken);

    g = feed(ci, {false});
    r = ci.resolve(g, true, false);
    EXPECT_TRUE(r.known);
    EXPECT_EQ(r.value, weaklyNotTaken);
}

TEST(CounterInference, ResolveStraddleUsesNewestOutcome)
{
    const auto &ci = CounterInference::instance();
    // Oldest-to-newest N,T,T,N leaves exactly {WNT, WT} — the straddle
    // case the paper leaves open. Newest-first feed order: N,T,T,N.
    const auto g = feed(ci, {false, true, true, false});
    EXPECT_EQ(ci.imageOf(g), 0b0110);
    auto r = ci.resolve(g, true, false);
    EXPECT_EQ(r.value, weaklyNotTaken);
    r = ci.resolve(g, true, true);
    EXPECT_EQ(r.value, weaklyTaken);
}

TEST(CounterInference, ResolveNoHistoryIsStale)
{
    const auto &ci = CounterInference::instance();
    const auto r = ci.resolve(CounterInference::identity, false, false);
    EXPECT_FALSE(r.known);
}

/** Exhaustive check against brute force for all histories up to length N. */
class InferenceExhaustive : public ::testing::TestWithParam<unsigned>
{};

TEST_P(InferenceExhaustive, MatchesBruteForce)
{
    const unsigned len = GetParam();
    const auto &ci = CounterInference::instance();
    for (std::uint64_t bitsv = 0; bitsv < (1ull << len); ++bitsv) {
        bool hist[16];
        std::vector<bool> histv(len);
        for (unsigned i = 0; i < len; ++i) {
            hist[i] = (bitsv >> i) & 1;
            histv[i] = hist[i];
        }
        const auto g = feed(ci, histv);
        ASSERT_EQ(ci.imageOf(g),
                  CounterInference::bruteForceMask(hist, len))
            << "history bits " << bitsv << " len " << len;
    }
}

INSTANTIATE_TEST_SUITE_P(Lengths, InferenceExhaustive,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 8u, 10u));

TEST(CounterInference, ImageNeverGrows)
{
    // Observing more history can only narrow the possible-state set.
    const auto &ci = CounterInference::instance();
    for (unsigned bitsv = 0; bitsv < 64; ++bitsv) {
        CounterInference::StateFn g = CounterInference::identity;
        unsigned prev = 4;
        for (unsigned i = 0; i < 6; ++i) {
            g = ci.observeOlder(g, (bitsv >> i) & 1);
            const unsigned n =
                static_cast<unsigned>(__builtin_popcount(ci.imageOf(g)));
            ASSERT_LE(n, prev);
            prev = n;
        }
    }
}

TEST(CounterInference, DeterminedIsSticky)
{
    // Once pinned, additional (older) outcomes cannot unpin the value.
    const auto &ci = CounterInference::instance();
    auto g = feed(ci, {true, true, true});
    const auto pinned = ci.imageOf(g);
    g = ci.observeOlder(g, false);
    g = ci.observeOlder(g, true);
    EXPECT_EQ(ci.imageOf(g), pinned);
}

} // namespace
} // namespace rsr::core
