/**
 * @file
 * ISA tests: encode/decode round trips across the whole opcode space,
 * immediate sign handling, branch-kind classification, and metadata.
 */

#include <gtest/gtest.h>

#include "isa/inst.hh"

namespace rsr::isa
{
namespace
{

std::vector<Opcode>
allOpcodes()
{
    std::vector<Opcode> ops;
    for (unsigned i = 0; i < static_cast<unsigned>(Opcode::NumOpcodes); ++i)
        ops.push_back(static_cast<Opcode>(i));
    return ops;
}

Inst
sampleInst(Opcode op)
{
    Inst in;
    in.op = op;
    switch (opcodeFormat(op)) {
      case Format::R:
        in.rd = 3;
        in.rs1 = 7;
        in.rs2 = 21;
        break;
      case Format::I:
        in.rd = 5;
        in.rs1 = 9;
        in.imm = -123;
        break;
      case Format::S:
      case Format::B:
        in.rs1 = 11;
        in.rs2 = 30;
        in.imm = 456;
        break;
      case Format::J26:
        in.imm = -100000;
        break;
      case Format::J21:
        in.rd = 31;
        in.imm = 90000;
        break;
      case Format::JR:
        in.rd = 0;
        in.rs1 = 31;
        break;
    }
    return in;
}

class OpcodeRoundTrip : public ::testing::TestWithParam<Opcode>
{};

TEST_P(OpcodeRoundTrip, EncodeDecode)
{
    const Inst in = sampleInst(GetParam());
    const Inst out = decode(encode(in));
    EXPECT_EQ(in, out) << disassemble(in);
}

TEST_P(OpcodeRoundTrip, NameNonEmpty)
{
    EXPECT_STRNE(opcodeName(GetParam()), "");
}

TEST_P(OpcodeRoundTrip, DisassembleNonEmpty)
{
    EXPECT_FALSE(disassemble(sampleInst(GetParam()), 0x1000).empty());
}

INSTANTIATE_TEST_SUITE_P(AllOpcodes, OpcodeRoundTrip,
                         ::testing::ValuesIn(allOpcodes()));

TEST(IsaEncode, ImmediateBoundsRoundTrip)
{
    for (std::int32_t imm : {-32768, -1, 0, 1, 32767}) {
        Inst in;
        in.op = Opcode::Addi;
        in.rd = 1;
        in.rs1 = 2;
        in.imm = imm;
        EXPECT_EQ(decode(encode(in)).imm, imm);
    }
}

TEST(IsaEncode, J26ImmediateBounds)
{
    for (std::int32_t imm : {-(1 << 25), -1, 0, (1 << 25) - 1}) {
        Inst in;
        in.op = Opcode::J;
        in.imm = imm;
        EXPECT_EQ(decode(encode(in)).imm, imm);
    }
}

TEST(IsaDecode, UnknownOpcodeIsHalt)
{
    // Opcode field beyond NumOpcodes must decode to Halt, not crash.
    const std::uint32_t word = 0x3fu << 26;
    EXPECT_EQ(decode(word).op, Opcode::Halt);
}

TEST(IsaMeta, MemClassification)
{
    EXPECT_TRUE(opcodeIsLoad(Opcode::Lw));
    EXPECT_TRUE(opcodeIsLoad(Opcode::Fld));
    EXPECT_FALSE(opcodeIsLoad(Opcode::Sw));
    EXPECT_TRUE(opcodeIsStore(Opcode::Sd));
    EXPECT_TRUE(opcodeIsStore(Opcode::Fsd));
    EXPECT_FALSE(opcodeIsStore(Opcode::Ld));
    EXPECT_EQ(opcodeMemBytes(Opcode::Lb), 1u);
    EXPECT_EQ(opcodeMemBytes(Opcode::Lh), 2u);
    EXPECT_EQ(opcodeMemBytes(Opcode::Lw), 4u);
    EXPECT_EQ(opcodeMemBytes(Opcode::Sd), 8u);
    EXPECT_EQ(opcodeMemBytes(Opcode::Add), 0u);
}

TEST(IsaMeta, OpClassMapping)
{
    EXPECT_EQ(opcodeClass(Opcode::Add), OpClass::IntAlu);
    EXPECT_EQ(opcodeClass(Opcode::Mul), OpClass::IntMul);
    EXPECT_EQ(opcodeClass(Opcode::Div), OpClass::IntDiv);
    EXPECT_EQ(opcodeClass(Opcode::Fadd), OpClass::FpAdd);
    EXPECT_EQ(opcodeClass(Opcode::Fmul), OpClass::FpMul);
    EXPECT_EQ(opcodeClass(Opcode::Fdiv), OpClass::FpDiv);
    EXPECT_EQ(opcodeClass(Opcode::Lw), OpClass::Load);
    EXPECT_EQ(opcodeClass(Opcode::Sw), OpClass::Store);
    EXPECT_EQ(opcodeClass(Opcode::Beq), OpClass::Control);
    EXPECT_EQ(opcodeClass(Opcode::Jalr), OpClass::Control);
}

TEST(IsaMeta, BranchKinds)
{
    Inst in;
    in.op = Opcode::Beq;
    EXPECT_EQ(in.branchKind(), BranchKind::Conditional);

    in.op = Opcode::J;
    EXPECT_EQ(in.branchKind(), BranchKind::DirectJump);

    in.op = Opcode::Jal;
    in.rd = regRa;
    EXPECT_EQ(in.branchKind(), BranchKind::Call);

    in.op = Opcode::Jal;
    in.rd = 0;
    EXPECT_EQ(in.branchKind(), BranchKind::DirectJump);

    in.op = Opcode::Jalr;
    in.rd = regRa;
    in.rs1 = 5;
    EXPECT_EQ(in.branchKind(), BranchKind::Call);

    in.op = Opcode::Jalr;
    in.rd = 0;
    in.rs1 = regRa;
    EXPECT_EQ(in.branchKind(), BranchKind::Return);

    in.op = Opcode::Jalr;
    in.rd = 0;
    in.rs1 = 5;
    EXPECT_EQ(in.branchKind(), BranchKind::IndirectJump);

    in.op = Opcode::Add;
    EXPECT_EQ(in.branchKind(), BranchKind::NotBranch);
}

TEST(IsaMeta, FpClassification)
{
    Inst in;
    in.op = Opcode::Fadd;
    EXPECT_TRUE(in.isFp());
    in.op = Opcode::Fld;
    EXPECT_TRUE(in.isFp());
    in.op = Opcode::Fcvt;
    EXPECT_FALSE(in.isFp()); // reads an integer source
    in.op = Opcode::Add;
    EXPECT_FALSE(in.isFp());
}

TEST(IsaDisasm, KnownPatterns)
{
    Inst in;
    in.op = Opcode::Add;
    in.rd = 1;
    in.rs1 = 2;
    in.rs2 = 3;
    EXPECT_EQ(disassemble(in), "add r1, r2, r3");

    in = Inst{};
    in.op = Opcode::Lw;
    in.rd = 4;
    in.rs1 = 5;
    in.imm = -8;
    EXPECT_EQ(disassemble(in), "lw r4, -8(r5)");

    in = Inst{};
    in.op = Opcode::Nop;
    EXPECT_EQ(disassemble(in), "nop");
}

/**
 * Fuzz property: any instruction built from random in-range fields must
 * survive an encode/decode round trip, and any random 32-bit word must
 * decode without crashing (unknown opcodes become Halt).
 */
TEST(IsaFuzz, RandomFieldsRoundTrip)
{
    std::uint64_t state = 0x12345678;
    auto next = [&] {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        return state;
    };
    for (int i = 0; i < 20000; ++i) {
        Inst in;
        in.op = static_cast<Opcode>(
            next() % static_cast<unsigned>(Opcode::NumOpcodes));
        in.rd = static_cast<std::uint8_t>(next() % 32);
        in.rs1 = static_cast<std::uint8_t>(next() % 32);
        in.rs2 = static_cast<std::uint8_t>(next() % 32);
        switch (opcodeFormat(in.op)) {
          case Format::I:
          case Format::S:
          case Format::B:
            in.imm = static_cast<std::int32_t>(next() % 65536) - 32768;
            break;
          case Format::J26:
            in.imm = static_cast<std::int32_t>(next() % (1u << 26)) -
                     (1 << 25);
            break;
          case Format::J21:
            in.imm = static_cast<std::int32_t>(next() % (1u << 21)) -
                     (1 << 20);
            break;
          default:
            in.rd %= 32;
            break;
        }
        // Formats that do not carry some fields zero them on decode.
        Inst canonical = in;
        switch (opcodeFormat(in.op)) {
          case Format::R:
            canonical.imm = 0;
            break;
          case Format::I:
            canonical.rs2 = 0;
            break;
          case Format::S:
          case Format::B:
            canonical.rd = 0;
            break;
          case Format::J26:
            canonical.rd = canonical.rs1 = canonical.rs2 = 0;
            break;
          case Format::J21:
            canonical.rs1 = canonical.rs2 = 0;
            break;
          case Format::JR:
            canonical.rs2 = 0;
            canonical.imm = 0;
            break;
        }
        ASSERT_EQ(decode(encode(canonical)), canonical)
            << disassemble(canonical);
    }
}

TEST(IsaFuzz, ArbitraryWordsDecodeSafely)
{
    std::uint64_t state = 0xfeedface;
    for (int i = 0; i < 50000; ++i) {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        const Inst in = decode(static_cast<std::uint32_t>(state));
        ASSERT_LT(static_cast<unsigned>(in.op),
                  static_cast<unsigned>(Opcode::NumOpcodes));
        ASSERT_LT(in.rd, 32);
        ASSERT_LT(in.rs1, 32);
        ASSERT_LT(in.rs2, 32);
    }
}

} // namespace
} // namespace rsr::isa
