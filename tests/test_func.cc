/**
 * @file
 * Functional-simulator tests: per-opcode architectural semantics, control
 * flow, memory access, DynInst record contents, and determinism.
 */

#include <gtest/gtest.h>

#include <bit>

#include "func/funcsim.hh"
#include "workload/program_builder.hh"

namespace rsr::func
{
namespace
{

using isa::Opcode;
using workload::Label;
using workload::ProgramBuilder;

/** Run a freshly built program for at most @p max steps. */
std::unique_ptr<FuncSim>
runProgram(const Program &prog, std::uint64_t max = 10000)
{
    auto fs = std::make_unique<FuncSim>(prog);
    fs->run(max);
    return fs;
}

TEST(FuncSim, IntArithmetic)
{
    ProgramBuilder b;
    b.addi(1, 0, 20);
    b.addi(2, 0, 22);
    b.rtype(Opcode::Add, 3, 1, 2);
    b.rtype(Opcode::Sub, 4, 1, 2);
    b.rtype(Opcode::Mul, 5, 1, 2);
    b.rtype(Opcode::Div, 6, 2, 1);
    b.halt();
    static Program prog = b.build("t");
    auto fs = runProgram(prog);
    EXPECT_EQ(fs->reg(3), 42u);
    EXPECT_EQ(fs->reg(4), static_cast<std::uint64_t>(-2));
    EXPECT_EQ(fs->reg(5), 440u);
    EXPECT_EQ(fs->reg(6), 1u);
}

TEST(FuncSim, DivideByZeroYieldsAllOnes)
{
    ProgramBuilder b;
    b.addi(1, 0, 5);
    b.rtype(Opcode::Div, 2, 1, 0);
    b.halt();
    static Program prog = b.build("t");
    auto fs = runProgram(prog);
    EXPECT_EQ(fs->reg(2), ~std::uint64_t{0});
}

TEST(FuncSim, LogicalOps)
{
    ProgramBuilder b;
    b.addi(1, 0, 0b1100);
    b.addi(2, 0, 0b1010);
    b.rtype(Opcode::And, 3, 1, 2);
    b.rtype(Opcode::Or, 4, 1, 2);
    b.rtype(Opcode::Xor, 5, 1, 2);
    b.halt();
    static Program prog = b.build("t");
    auto fs = runProgram(prog);
    EXPECT_EQ(fs->reg(3), 0b1000u);
    EXPECT_EQ(fs->reg(4), 0b1110u);
    EXPECT_EQ(fs->reg(5), 0b0110u);
}

TEST(FuncSim, Shifts)
{
    ProgramBuilder b;
    b.addi(1, 0, -8); // 0xfff...f8
    b.addi(2, 0, 2);
    b.rtype(Opcode::Sll, 3, 1, 2);
    b.rtype(Opcode::Srl, 4, 1, 2);
    b.rtype(Opcode::Sra, 5, 1, 2);
    b.itype(Opcode::Slli, 6, 2, 10);
    b.itype(Opcode::Srli, 7, 2, 1);
    b.halt();
    static Program prog = b.build("t");
    auto fs = runProgram(prog);
    EXPECT_EQ(fs->reg(3), static_cast<std::uint64_t>(-32));
    EXPECT_EQ(fs->reg(4), (~std::uint64_t{0} - 7) >> 2);
    EXPECT_EQ(fs->reg(5), static_cast<std::uint64_t>(-2));
    EXPECT_EQ(fs->reg(6), 2048u);
    EXPECT_EQ(fs->reg(7), 1u);
}

TEST(FuncSim, Comparisons)
{
    ProgramBuilder b;
    b.addi(1, 0, -5);
    b.addi(2, 0, 3);
    b.rtype(Opcode::Slt, 3, 1, 2);  // signed: -5 < 3
    b.rtype(Opcode::Sltu, 4, 1, 2); // unsigned: huge > 3
    b.itype(Opcode::Slti, 5, 2, 10);
    b.halt();
    static Program prog = b.build("t");
    auto fs = runProgram(prog);
    EXPECT_EQ(fs->reg(3), 1u);
    EXPECT_EQ(fs->reg(4), 0u);
    EXPECT_EQ(fs->reg(5), 1u);
}

TEST(FuncSim, LuiAndImmediates)
{
    ProgramBuilder b;
    b.lui(1, 0x1234);
    b.itype(Opcode::Ori, 1, 1, 0x567);
    b.itype(Opcode::Andi, 2, 1, 0xff);
    b.itype(Opcode::Xori, 3, 1, 0x1);
    b.halt();
    static Program prog = b.build("t");
    auto fs = runProgram(prog);
    EXPECT_EQ(fs->reg(1), 0x12340567u);
    EXPECT_EQ(fs->reg(2), 0x67u);
    EXPECT_EQ(fs->reg(3), 0x12340566u);
}

TEST(FuncSim, LoadImm64AllRanges)
{
    for (std::uint64_t v :
         {std::uint64_t{0}, std::uint64_t{0x7fff}, std::uint64_t{0x8000},
          std::uint64_t{0xdeadbeef}, std::uint64_t{0x123456789abcdef0},
          ~std::uint64_t{0}}) {
        ProgramBuilder b;
        b.loadImm64(1, v);
        b.halt();
        Program prog = b.build("t");
        FuncSim fs(prog);
        fs.run(100);
        EXPECT_EQ(fs.reg(1), v) << std::hex << v;
    }
}

TEST(FuncSim, R0AlwaysZero)
{
    ProgramBuilder b;
    b.addi(0, 0, 99);
    b.rtype(Opcode::Add, 0, 0, 0);
    b.halt();
    static Program prog = b.build("t");
    auto fs = runProgram(prog);
    EXPECT_EQ(fs->reg(0), 0u);
}

TEST(FuncSim, LoadsStoresAllWidths)
{
    ProgramBuilder b;
    const auto base = b.allocData(64);
    b.loadImm64(1, base);
    b.loadImm64(2, 0x1122334455667788);
    b.store(Opcode::Sd, 2, 1, 0);
    b.load(Opcode::Ld, 3, 1, 0);
    b.load(Opcode::Lw, 4, 1, 0); // 0x55667788 sign-extends positive
    b.load(Opcode::Lh, 5, 1, 0);
    b.load(Opcode::Lb, 6, 1, 1); // 0x77
    b.store(Opcode::Sb, 2, 1, 8);
    b.load(Opcode::Lb, 7, 1, 8); // 0x88 sign-extends negative
    b.halt();
    static Program prog = b.build("t");
    auto fs = runProgram(prog);
    EXPECT_EQ(fs->reg(3), 0x1122334455667788u);
    EXPECT_EQ(fs->reg(4), 0x55667788u);
    EXPECT_EQ(fs->reg(5), 0x7788u);
    EXPECT_EQ(fs->reg(6), 0x77u);
    EXPECT_EQ(fs->reg(7), static_cast<std::uint64_t>(-0x78));
}

TEST(FuncSim, FloatingPoint)
{
    ProgramBuilder b;
    b.addi(1, 0, 6);
    b.addi(2, 0, 4);
    b.rtype(Opcode::Fcvt, 1, 1, 0);
    b.rtype(Opcode::Fcvt, 2, 2, 0);
    b.rtype(Opcode::Fadd, 3, 1, 2);
    b.rtype(Opcode::Fsub, 4, 1, 2);
    b.rtype(Opcode::Fmul, 5, 1, 2);
    b.rtype(Opcode::Fdiv, 6, 1, 2);
    b.rtype(Opcode::Fcmplt, 7, 2, 1);
    b.halt();
    static Program prog = b.build("t");
    auto fs = runProgram(prog);
    EXPECT_DOUBLE_EQ(fs->freg(3), 10.0);
    EXPECT_DOUBLE_EQ(fs->freg(4), 2.0);
    EXPECT_DOUBLE_EQ(fs->freg(5), 24.0);
    EXPECT_DOUBLE_EQ(fs->freg(6), 1.5);
    EXPECT_EQ(fs->reg(7), 1u);
}

TEST(FuncSim, FpDivByZeroYieldsZero)
{
    ProgramBuilder b;
    b.addi(1, 0, 5);
    b.rtype(Opcode::Fcvt, 1, 1, 0);
    b.rtype(Opcode::Fdiv, 2, 1, 31); // f31 is 0
    b.halt();
    static Program prog = b.build("t");
    auto fs = runProgram(prog);
    EXPECT_DOUBLE_EQ(fs->freg(2), 0.0);
}

TEST(FuncSim, FpMemoryRoundTrip)
{
    ProgramBuilder b;
    const auto base = b.allocData(16);
    b.loadImm64(1, base);
    b.addi(2, 0, 7);
    b.rtype(Opcode::Fcvt, 3, 2, 0);
    b.store(Opcode::Fsd, 3, 1, 0);
    b.load(Opcode::Fld, 4, 1, 0);
    b.halt();
    static Program prog = b.build("t");
    auto fs = runProgram(prog);
    EXPECT_DOUBLE_EQ(fs->freg(4), 7.0);
}

TEST(FuncSim, BranchesTakenAndNot)
{
    ProgramBuilder b;
    b.addi(1, 0, 1);
    b.addi(2, 0, 2);
    Label skip = b.newLabel();
    b.branch(Opcode::Beq, 1, 2, skip); // not taken
    b.addi(3, 0, 10);
    b.bind(skip);
    Label skip2 = b.newLabel();
    b.branch(Opcode::Bne, 1, 2, skip2); // taken
    b.addi(4, 0, 20);                   // skipped
    b.bind(skip2);
    Label skip3 = b.newLabel();
    b.branch(Opcode::Blt, 2, 1, skip3); // not taken (2 >= 1)
    b.addi(5, 0, 30);
    b.bind(skip3);
    Label skip4 = b.newLabel();
    b.branch(Opcode::Bge, 2, 1, skip4); // taken
    b.addi(6, 0, 40);                   // skipped
    b.bind(skip4);
    b.halt();
    static Program prog = b.build("t");
    auto fs = runProgram(prog);
    EXPECT_EQ(fs->reg(3), 10u);
    EXPECT_EQ(fs->reg(4), 0u);
    EXPECT_EQ(fs->reg(5), 30u);
    EXPECT_EQ(fs->reg(6), 0u);
}

TEST(FuncSim, LoopExecutesExactTripCount)
{
    ProgramBuilder b;
    b.addi(1, 0, 10); // counter
    b.addi(2, 0, 0);  // accumulator
    Label loop = b.here();
    b.addi(2, 2, 3);
    b.addi(1, 1, -1);
    b.branch(Opcode::Bne, 1, 0, loop);
    b.halt();
    static Program prog = b.build("t");
    auto fs = runProgram(prog);
    EXPECT_EQ(fs->reg(2), 30u);
}

TEST(FuncSim, CallAndReturn)
{
    ProgramBuilder b;
    Label fn = b.newLabel();
    Label entry = b.newLabel();
    b.bind(entry);
    b.call(fn);
    b.addi(2, 0, 2); // runs after return
    b.halt();
    b.bind(fn);
    b.addi(1, 0, 1);
    b.ret();
    static Program prog = b.build("t", entry);
    auto fs = runProgram(prog);
    EXPECT_EQ(fs->reg(1), 1u);
    EXPECT_EQ(fs->reg(2), 2u);
}

TEST(FuncSim, IndirectCallThroughRegister)
{
    // Forward-referenced target published through a data-memory slot
    // (poked once the function is bound), then called through a register.
    ProgramBuilder b3;
    Label fn3 = b3.newLabel();
    Label entry3 = b3.newLabel();
    const auto slot3 = b3.allocData(8);
    b3.bind(entry3);
    b3.loadImm64(5, slot3);
    b3.load(Opcode::Ld, 6, 5, 0);
    b3.callReg(6);
    b3.halt();
    b3.bind(fn3);
    b3.addi(1, 0, 77);
    b3.ret();
    b3.pokeData(slot3, b3.addressOf(fn3), 8);
    static Program prog3 = b3.build("t", entry3);
    auto fs = runProgram(prog3);
    EXPECT_EQ(fs->reg(1), 77u);
}

TEST(FuncSim, DynInstRecordsBranch)
{
    ProgramBuilder b;
    b.addi(1, 0, 1);
    Label target = b.newLabel();
    b.branch(Opcode::Bne, 1, 0, target);
    b.nop();
    b.bind(target);
    b.halt();
    static Program prog = b.build("t");
    FuncSim fs(prog);
    DynInst d;
    fs.step(&d); // addi
    EXPECT_EQ(d.seq, 0u);
    EXPECT_FALSE(d.isBranch());
    fs.step(&d); // bne taken
    EXPECT_TRUE(d.isBranch());
    EXPECT_TRUE(d.taken);
    EXPECT_EQ(d.nextPc, d.pc + 8);
}

TEST(FuncSim, DynInstRecordsMemAddr)
{
    ProgramBuilder b;
    const auto base = b.allocData(32);
    b.loadImm64(1, base);
    b.load(Opcode::Ld, 2, 1, 16);
    b.halt();
    static Program prog = b.build("t");
    FuncSim fs(prog);
    DynInst d;
    while (fs.step(&d))
        if (d.inst.isMem())
            break;
    EXPECT_EQ(d.effAddr, base + 16);
    EXPECT_TRUE(d.inst.isLoad());
}

TEST(FuncSim, HaltStopsExecution)
{
    ProgramBuilder b;
    b.addi(1, 0, 1);
    b.halt();
    b.addi(1, 0, 99); // unreachable
    static Program prog = b.build("t");
    FuncSim fs(prog);
    EXPECT_EQ(fs.run(100), 1u);
    EXPECT_TRUE(fs.halted());
    EXPECT_FALSE(fs.step(nullptr));
    EXPECT_EQ(fs.reg(1), 1u);
}

TEST(FuncSim, RunOffCodeEndHalts)
{
    ProgramBuilder b;
    b.addi(1, 0, 1); // no halt: falls off the end
    static Program prog = b.build("t");
    FuncSim fs(prog);
    EXPECT_EQ(fs.run(100), 1u);
    EXPECT_TRUE(fs.halted());
}

TEST(FuncSim, ResetRestoresInitialState)
{
    ProgramBuilder b;
    const auto base = b.allocData(8);
    b.pokeData(base, 5, 8);
    b.loadImm64(1, base);
    b.load(Opcode::Ld, 2, 1, 0);
    b.addi(3, 2, 1);
    b.store(Opcode::Sd, 3, 1, 0);
    b.halt();
    static Program prog = b.build("t");
    FuncSim fs(prog);
    fs.run(100);
    EXPECT_EQ(fs.reg(2), 5u);
    fs.reset();
    EXPECT_EQ(fs.instCount(), 0u);
    EXPECT_FALSE(fs.halted());
    fs.run(100);
    EXPECT_EQ(fs.reg(2), 5u); // data segment restored, not 6
}

TEST(FuncSim, DeterministicReplay)
{
    ProgramBuilder b;
    b.addi(1, 0, 100);
    Label loop = b.here();
    b.rtype(Opcode::Mul, 2, 2, 1);
    b.addi(1, 1, -1);
    b.branch(Opcode::Bne, 1, 0, loop);
    b.halt();
    static Program prog = b.build("t");
    FuncSim a(prog), c(prog);
    DynInst da, dc;
    while (true) {
        const bool ra = a.step(&da);
        const bool rc = c.step(&dc);
        ASSERT_EQ(ra, rc);
        if (!ra)
            break;
        ASSERT_EQ(da.pc, dc.pc);
        ASSERT_EQ(da.nextPc, dc.nextPc);
    }
    EXPECT_EQ(a.reg(2), c.reg(2));
}

TEST(FuncSim, InitialSpLoaded)
{
    ProgramBuilder b;
    b.halt();
    Program prog = b.build("t");
    prog.initialSp = 0x12340000;
    FuncSim fs(prog);
    EXPECT_EQ(fs.reg(isa::regSp), 0x12340000u);
}

} // namespace
} // namespace rsr::func
