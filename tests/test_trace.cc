/**
 * @file
 * Trace-file tests: record/replay round trips, compression behaviour,
 * trace-driven vs execution-driven timing equivalence, rewind, and
 * malformed-file handling.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "branch/predictor.hh"
#include "cache/hierarchy.hh"
#include "core/machine.hh"
#include "func/funcsim.hh"
#include "trace/trace.hh"
#include "util/error.hh"
#include "workload/program_builder.hh"
#include "workload/synthetic.hh"

namespace rsr::trace
{
namespace
{

std::string
tempPath(const char *tag)
{
    return std::string(::testing::TempDir()) + "/rsr_trace_" + tag +
           ".trc";
}

const func::Program &
twolfProgram()
{
    static const func::Program prog = workload::buildSynthetic(
        workload::standardWorkloadParams("twolf"));
    return prog;
}

TEST(Trace, RoundTripExact)
{
    const auto path = tempPath("roundtrip");
    const std::uint64_t n = 20'000;
    ASSERT_EQ(recordTrace(twolfProgram(), n, path), n);

    func::FuncSim fs(twolfProgram());
    TraceReader reader(path);
    EXPECT_EQ(reader.records(), n);

    func::DynInst expect, got;
    for (std::uint64_t i = 0; i < n; ++i) {
        ASSERT_TRUE(fs.step(&expect));
        ASSERT_TRUE(reader.next(got));
        ASSERT_EQ(got.pc, expect.pc) << i;
        ASSERT_EQ(got.nextPc, expect.nextPc) << i;
        ASSERT_EQ(got.effAddr, expect.effAddr) << i;
        ASSERT_EQ(got.inst, expect.inst) << i;
        ASSERT_EQ(got.taken, expect.taken) << i;
        ASSERT_EQ(got.seq, i);
    }
    ASSERT_FALSE(reader.next(got));
    std::remove(path.c_str());
}

TEST(Trace, CompressionBeatsNaiveEncoding)
{
    const auto path = tempPath("compression");
    const std::uint64_t n = 50'000;
    func::FuncSim fs(twolfProgram());
    TraceWriter writer(path);
    func::DynInst d;
    for (std::uint64_t i = 0; i < n; ++i) {
        ASSERT_TRUE(fs.step(&d));
        writer.append(d);
    }
    writer.close();
    // A naive fixed-size record is 28+ bytes; delta encoding should stay
    // well under half that on real instruction streams.
    EXPECT_LT(writer.payloadBytes(), n * 14);
    std::remove(path.c_str());
}

TEST(Trace, TraceDrivenTimingMatchesExecutionDriven)
{
    const auto path = tempPath("timing");
    const std::uint64_t n = 30'000;
    ASSERT_EQ(recordTrace(twolfProgram(), n, path), n);

    const auto mc = core::MachineConfig::scaledDefault();

    // Execution-driven.
    core::Machine m1(mc);
    func::FuncSim fs(twolfProgram());
    struct Src : uarch::InstSource
    {
        func::FuncSim &fs;
        explicit Src(func::FuncSim &fs) : fs(fs) {}
        bool next(func::DynInst &out) override { return fs.step(&out); }
    } src(fs);
    uarch::OoOCore core1(mc.core, m1.hier, m1.bp);
    const auto r1 = core1.run(src, n);

    // Trace-driven.
    core::Machine m2(mc);
    TraceReader reader(path);
    uarch::OoOCore core2(mc.core, m2.hier, m2.bp);
    const auto r2 = core2.run(reader, n);

    EXPECT_EQ(r1.cycles, r2.cycles);
    EXPECT_EQ(r1.insts, r2.insts);
    EXPECT_EQ(r1.branchMispredicts, r2.branchMispredicts);
    std::remove(path.c_str());
}

TEST(Trace, RewindReplays)
{
    const auto path = tempPath("rewind");
    ASSERT_EQ(recordTrace(twolfProgram(), 1000, path), 1000u);
    TraceReader reader(path);
    func::DynInst a, b;
    ASSERT_TRUE(reader.next(a));
    while (reader.next(b)) {
    }
    reader.rewind();
    ASSERT_TRUE(reader.next(b));
    EXPECT_EQ(a.pc, b.pc);
    EXPECT_EQ(a.inst, b.inst);
    std::remove(path.c_str());
}

TEST(Trace, EarlyHaltTruncates)
{
    // A program that halts after a few instructions records only those.
    workload::ProgramBuilder b;
    b.addi(1, 0, 1);
    b.addi(2, 0, 2);
    b.halt();
    const auto prog = b.build("tiny");
    const auto path = tempPath("halt");
    EXPECT_EQ(recordTrace(prog, 1000, path), 2u);
    TraceReader reader(path);
    EXPECT_EQ(reader.records(), 2u);
    std::remove(path.c_str());
}

TEST(TraceErrors, MissingFileThrowsUserError)
{
    EXPECT_THROW(TraceReader("/nonexistent/path/nope.trc"), UserError);
}

TEST(TraceErrors, GarbageFileThrowsCorruptInput)
{
    const auto path = tempPath("garbage");
    std::FILE *f = std::fopen(path.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    const char junk[64] = "this is not a trace file at all, sorry......";
    std::fwrite(junk, 1, sizeof(junk), f);
    std::fclose(f);
    try {
        TraceReader r(path);
        FAIL() << "TraceReader did not throw";
    } catch (const CorruptInputError &e) {
        EXPECT_NE(std::string(e.what()).find("not a trace file"),
                  std::string::npos);
    }
    std::remove(path.c_str());
}

} // namespace
} // namespace rsr::trace
