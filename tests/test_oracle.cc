/**
 * @file
 * Property tests against independent reference models: the cache is
 * checked against a simple list-based true-LRU oracle across random
 * mixed load/store streams and all write-policy combinations, and the
 * gshare predictor against a naive map-based reimplementation.
 */

#include <gtest/gtest.h>

#include <list>
#include <map>
#include <tuple>
#include <vector>

#include "branch/predictor.hh"
#include "cache/cache.hh"
#include "util/random.hh"

namespace rsr
{
namespace
{

/** Minimal true-LRU reference model. */
class LruOracle
{
  public:
    LruOracle(unsigned sets, unsigned assoc, bool write_allocate)
        : sets(sets), assoc(assoc), writeAllocate(write_allocate),
          lists(sets)
    {}

    /** Returns hit. */
    bool
    access(std::uint64_t line, bool is_store)
    {
        auto &l = lists[line % sets];
        for (auto it = l.begin(); it != l.end(); ++it) {
            if (*it == line) {
                l.erase(it);
                l.push_front(line);
                return true;
            }
        }
        if (!is_store || writeAllocate) {
            l.push_front(line);
            if (l.size() > assoc)
                l.pop_back();
        }
        return false;
    }

    bool
    present(std::uint64_t line) const
    {
        const auto &l = lists[line % sets];
        for (auto v : l)
            if (v == line)
                return true;
        return false;
    }

    int
    recency(std::uint64_t line) const
    {
        const auto &l = lists[line % sets];
        int pos = 0;
        for (auto v : l) {
            if (v == line)
                return pos;
            ++pos;
        }
        return -1;
    }

  private:
    unsigned sets;
    unsigned assoc;
    bool writeAllocate;
    std::vector<std::list<std::uint64_t>> lists;
};

class CacheVsOracle
    : public ::testing::TestWithParam<
          std::tuple<unsigned, unsigned, cache::WritePolicy, std::uint64_t>>
{};

TEST_P(CacheVsOracle, RandomStreamAgrees)
{
    const auto [assoc, sets, policy, seed] = GetParam();
    cache::CacheParams p;
    p.assoc = assoc;
    p.lineBytes = 64;
    p.sizeBytes = std::uint64_t{64} * assoc * sets;
    p.writePolicy = policy;
    cache::Cache c(p);
    LruOracle oracle(sets, assoc,
                     policy == cache::WritePolicy::WriteBackAllocate);

    Rng rng(seed);
    for (int i = 0; i < 5000; ++i) {
        const std::uint64_t line = rng.below(sets * assoc * 4);
        const bool store = rng.chance(0.3);
        const bool hit = c.access(line * 64, store).hit;
        const bool oracle_hit = oracle.access(line, store);
        ASSERT_EQ(hit, oracle_hit) << "iteration " << i;
    }
    // Full-state comparison at the end.
    for (std::uint64_t line = 0; line < sets * assoc * 4; ++line) {
        ASSERT_EQ(c.probe(line * 64), oracle.present(line)) << line;
        ASSERT_EQ(c.recencyOf(line * 64), oracle.recency(line)) << line;
    }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CacheVsOracle,
    ::testing::Combine(
        ::testing::Values(1u, 2u, 4u, 8u), ::testing::Values(4u, 16u),
        ::testing::Values(cache::WritePolicy::WriteThroughNoAllocate,
                          cache::WritePolicy::WriteBackAllocate),
        ::testing::Values(std::uint64_t{11}, std::uint64_t{97})));

/** Naive gshare reference: explicit maps, no packing tricks. */
struct GshareOracle
{
    unsigned phtBits;
    unsigned histBits;
    std::map<std::uint32_t, std::uint8_t> pht;
    std::uint32_t ghr = 0;

    std::uint32_t
    index(std::uint64_t pc) const
    {
        const std::uint32_t mask = (1u << phtBits) - 1;
        return (static_cast<std::uint32_t>(pc >> 2) ^ ghr) & mask;
    }

    bool
    predict(std::uint64_t pc)
    {
        const auto it = pht.find(index(pc));
        const std::uint8_t v =
            it == pht.end() ? branch::counter::weaklyNotTaken : it->second;
        return branch::counter::taken(v);
    }

    void
    update(std::uint64_t pc, bool taken)
    {
        auto &v = pht.try_emplace(index(pc),
                                  branch::counter::weaklyNotTaken)
                      .first->second;
        v = branch::counter::update(v, taken);
        ghr = ((ghr << 1) | (taken ? 1 : 0)) & ((1u << histBits) - 1);
    }
};

TEST(GshareVsOracle, RandomBranchStreamAgrees)
{
    branch::PredictorParams p;
    p.phtEntries = 512;
    p.historyBits = 9;
    p.btbEntries = 16;
    p.rasEntries = 4;
    branch::GsharePredictor bp(p);
    GshareOracle oracle{9, 9, {}, 0};

    Rng rng(123);
    std::vector<std::uint64_t> pcs;
    for (int i = 0; i < 24; ++i)
        pcs.push_back(0x1000 + 4 * rng.below(4096));

    for (int i = 0; i < 20000; ++i) {
        const std::uint64_t pc = pcs[rng.below(pcs.size())];
        const bool taken = rng.chance((pc >> 4) % 10 / 10.0);
        const auto pred =
            bp.predict(pc, isa::BranchKind::Conditional).taken;
        const auto oracle_pred = oracle.predict(pc);
        ASSERT_EQ(pred, oracle_pred) << "iteration " << i;
        bp.update(pc, isa::BranchKind::Conditional, taken, pc + 64);
        oracle.update(pc, taken);
        ASSERT_EQ(bp.ghr(), oracle.ghr);
    }
}

/**
 * Reverse-cache-reconstruction oracle property over mixed streams: every
 * line *present* after forward warming under loads-only semantics also
 * appears after reverse reconstruction when stores are excluded from the
 * stream (complements the load-only exactness test in test_cache.cc by
 * sweeping random seeds).
 */
class ReconSeedSweep : public ::testing::TestWithParam<std::uint64_t>
{};

TEST_P(ReconSeedSweep, LoadOnlyExactness)
{
    cache::CacheParams p;
    p.assoc = 4;
    p.lineBytes = 64;
    p.sizeBytes = 64 * 4 * 8;
    p.writePolicy = cache::WritePolicy::WriteThroughNoAllocate;
    cache::Cache fwd(p), rev(p);

    Rng rng(GetParam());
    std::vector<std::uint64_t> stream;
    for (int i = 0; i < 600; ++i)
        stream.push_back(rng.below(128) * 64);
    for (auto a : stream) {
        fwd.access(a, false);
    }
    rev.beginReconstruction();
    for (auto it = stream.rbegin(); it != stream.rend(); ++it)
        rev.reconstructRef(*it);
    for (std::uint64_t line = 0; line < 128; ++line)
        ASSERT_EQ(fwd.recencyOf(line * 64), rev.recencyOf(line * 64))
            << line;
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReconSeedSweep,
                         ::testing::Range(std::uint64_t{1},
                                          std::uint64_t{21}));

} // namespace
} // namespace rsr
