/**
 * @file
 * Machine configuration file tests: key parsing, overrides across every
 * section, comments/whitespace handling, and error cases.
 */

#include <gtest/gtest.h>

#include "core/config_file.hh"
#include "util/error.hh"

namespace rsr::core
{
namespace
{

TEST(ConfigFile, CacheOverrides)
{
    auto mc = parseMachineConfig("dl1.size_bytes = 65536\n"
                                 "dl1.assoc = 8\n"
                                 "il1.hit_latency = 3\n"
                                 "l2.line_bytes = 128\n",
                                 MachineConfig::paperDefault());
    EXPECT_EQ(mc.hier.dl1.sizeBytes, 65536u);
    EXPECT_EQ(mc.hier.dl1.assoc, 8u);
    EXPECT_EQ(mc.hier.il1.hitLatency, 3u);
    EXPECT_EQ(mc.hier.l2.lineBytes, 128u);
    // Untouched fields keep the base values.
    EXPECT_EQ(mc.hier.il1.sizeBytes, 64u * 1024);
}

TEST(ConfigFile, BusAndMemOverrides)
{
    auto mc = parseMachineConfig("l1bus.width_bytes = 32\n"
                                 "l2bus.cpu_cycles_per_bus_cycle = 4\n"
                                 "mem.latency = 400\n",
                                 MachineConfig::paperDefault());
    EXPECT_EQ(mc.hier.l1Bus.widthBytes, 32u);
    EXPECT_EQ(mc.hier.l2Bus.cpuCyclesPerBusCycle, 4u);
    EXPECT_EQ(mc.hier.memLatency, 400u);
}

TEST(ConfigFile, PredictorOverrides)
{
    auto mc = parseMachineConfig("bp.pht_entries = 1024\n"
                                 "bp.history_bits = 10\n"
                                 "bp.btb_entries = 256\n"
                                 "bp.ras_entries = 16\n",
                                 MachineConfig::paperDefault());
    EXPECT_EQ(mc.bp.phtEntries, 1024u);
    EXPECT_EQ(mc.bp.historyBits, 10u);
    EXPECT_EQ(mc.bp.btbEntries, 256u);
    EXPECT_EQ(mc.bp.rasEntries, 16u);
}

TEST(ConfigFile, CoreOverrides)
{
    auto mc = parseMachineConfig("core.issue_width = 2\n"
                                 "core.rob_size = 128\n"
                                 "core.int_div_lat = 40\n"
                                 "core.store_forwarding = 1\n",
                                 MachineConfig::paperDefault());
    EXPECT_EQ(mc.core.issueWidth, 2u);
    EXPECT_EQ(mc.core.robSize, 128u);
    EXPECT_EQ(mc.core.intDivLat, 40u);
    EXPECT_TRUE(mc.core.storeForwarding);
}

TEST(ConfigFile, CommentsAndWhitespace)
{
    auto mc = parseMachineConfig("# a comment line\n"
                                 "\n"
                                 "   core.issue_width=8   # trailing\n"
                                 "\t\n",
                                 MachineConfig::paperDefault());
    EXPECT_EQ(mc.core.issueWidth, 8u);
}

TEST(ConfigFile, HexValues)
{
    auto mc = parseMachineConfig("mem.latency = 0x100\n",
                                 MachineConfig::paperDefault());
    EXPECT_EQ(mc.hier.memLatency, 256u);
}

TEST(ConfigFile, UnknownSectionThrows)
{
    try {
        parseMachineConfig("nic.latency = 5\n",
                           MachineConfig::paperDefault());
        FAIL() << "parseMachineConfig did not throw";
    } catch (const UserError &e) {
        EXPECT_NE(std::string(e.what()).find("unknown config section"),
                  std::string::npos);
    }
}

TEST(ConfigFile, UnknownFieldThrows)
{
    try {
        parseMachineConfig("dl1.banks = 4\n",
                           MachineConfig::paperDefault());
        FAIL() << "parseMachineConfig did not throw";
    } catch (const UserError &e) {
        EXPECT_NE(std::string(e.what()).find("unknown cache config"),
                  std::string::npos);
    }
}

TEST(ConfigFile, MalformedLineThrows)
{
    EXPECT_THROW(parseMachineConfig("dl1.size_bytes 65536\n",
                                    MachineConfig::paperDefault()),
                 UserError);
}

TEST(ConfigFile, NonIntegerValueThrows)
{
    EXPECT_THROW(parseMachineConfig("dl1.size_bytes = big\n",
                                    MachineConfig::paperDefault()),
                 UserError);
}

TEST(ConfigFile, MissingFileThrows)
{
    EXPECT_THROW(loadMachineConfig("/nonexistent/nope.cfg",
                                   MachineConfig::paperDefault()),
                 UserError);
}

} // namespace
} // namespace rsr::core
