/**
 * @file
 * Cache-sampling study tests: the time-sampled miss-ratio estimators
 * (count-all, primed-sets, stale, cold-corrected) on controlled reference
 * streams with known behaviour, plus estimator ordering properties.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "cachestudy/miss_ratio.hh"
#include "util/error.hh"
#include "util/random.hh"
#include "workload/synthetic.hh"

namespace rsr::cachestudy
{
namespace
{

cache::CacheParams
smallCache()
{
    cache::CacheParams p;
    p.name = "study";
    p.sizeBytes = 64 * 4 * 16; // 16 sets x 4 ways
    p.assoc = 4;
    p.lineBytes = 64;
    p.writePolicy = cache::WritePolicy::WriteThroughNoAllocate;
    return p;
}

/** Uniform random line addresses over @p lines distinct lines. */
std::vector<std::uint64_t>
randomTrace(std::uint64_t lines, std::size_t n, std::uint64_t seed)
{
    std::vector<std::uint64_t> out(n);
    Rng rng(seed);
    for (auto &a : out)
        a = rng.below(lines) * 64;
    return out;
}

std::vector<core::Cluster>
evenSchedule(std::size_t trace_len, std::uint64_t clusters,
             std::uint64_t size)
{
    std::vector<core::Cluster> out;
    const std::uint64_t stride = trace_len / clusters;
    for (std::uint64_t i = 0; i < clusters; ++i)
        out.push_back({i * stride, size});
    return out;
}

TEST(MissRatio, TrueRatioRepeatedLineIsCompulsoryOnly)
{
    // One line touched n times: exactly one (compulsory) miss.
    std::vector<std::uint64_t> trace(100, 0x4000);
    EXPECT_DOUBLE_EQ(trueMissRatio(smallCache(), trace), 0.01);
}

TEST(MissRatio, TrueRatioStreamingIsAllMisses)
{
    // Every reference is a fresh line: 100% misses.
    std::vector<std::uint64_t> trace;
    for (int i = 0; i < 500; ++i)
        trace.push_back(std::uint64_t(i) * 64);
    EXPECT_DOUBLE_EQ(trueMissRatio(smallCache(), trace), 1.0);
}

TEST(MissRatio, CountAllOverestimatesOnResidentSet)
{
    // Working set fits the cache: the true long-run miss ratio tends to
    // zero, but flush-and-count-all charges the refill of every sample.
    const auto trace = randomTrace(48, 60'000, 7);
    const auto schedule = evenSchedule(trace.size(), 20, 500);
    const double truth = trueMissRatio(smallCache(), trace);
    const auto cold =
        estimateMissRatio(smallCache(), trace, schedule,
                          ColdStart::CountAll);
    EXPECT_GT(cold.missRatio, truth * 2);
}

TEST(MissRatio, PrimedSetsNearTruthOnResidentSet)
{
    const auto trace = randomTrace(48, 60'000, 7);
    const auto schedule = evenSchedule(trace.size(), 20, 500);
    const double truth = trueMissRatio(smallCache(), trace);
    const auto primed = estimateMissRatio(smallCache(), trace, schedule,
                                          ColdStart::PrimedSets);
    const auto cold = estimateMissRatio(smallCache(), trace, schedule,
                                        ColdStart::CountAll);
    EXPECT_LT(std::fabs(primed.missRatio - truth),
              std::fabs(cold.missRatio - truth));
    EXPECT_GT(primed.excludedRefs, 0u);
}

TEST(MissRatio, StaleNearTruthWhenStateSurvives)
{
    // Resident working set: stale state is exactly right once warm.
    const auto trace = randomTrace(48, 60'000, 9);
    const auto schedule = evenSchedule(trace.size(), 20, 500);
    const double truth = trueMissRatio(smallCache(), trace);
    const auto stale = estimateMissRatio(smallCache(), trace, schedule,
                                         ColdStart::Stale);
    EXPECT_LT(std::fabs(stale.missRatio - truth), 0.05);
}

TEST(MissRatio, ColdCorrectedBetweenPrimedAndCountAll)
{
    const auto trace = randomTrace(200, 60'000, 11);
    const auto schedule = evenSchedule(trace.size(), 20, 500);
    const auto all = estimateMissRatio(smallCache(), trace, schedule,
                                       ColdStart::CountAll);
    const auto corr = estimateMissRatio(smallCache(), trace, schedule,
                                        ColdStart::ColdCorrected);
    // Correction can only discount unknown-state misses.
    EXPECT_LE(corr.missRatio, all.missRatio + 1e-12);
}

TEST(MissRatio, AllMissTraceEstimatedExactlyByEveryPolicy)
{
    // Streaming: every policy must report ~100% misses (nothing to get
    // wrong — even cold-start references are true misses).
    std::vector<std::uint64_t> trace;
    for (int i = 0; i < 40'000; ++i)
        trace.push_back(std::uint64_t(i) * 64);
    const auto schedule = evenSchedule(trace.size(), 10, 1000);
    for (const auto policy :
         {ColdStart::CountAll, ColdStart::Stale, ColdStart::ColdCorrected}) {
        const auto est =
            estimateMissRatio(smallCache(), trace, schedule, policy);
        EXPECT_NEAR(est.missRatio, 1.0, 1e-9) << coldStartName(policy);
    }
}

TEST(MissRatio, PolicyNames)
{
    EXPECT_STREQ(coldStartName(ColdStart::CountAll), "count-all");
    EXPECT_STREQ(coldStartName(ColdStart::PrimedSets), "primed-sets");
    EXPECT_STREQ(coldStartName(ColdStart::Stale), "stale");
    EXPECT_STREQ(coldStartName(ColdStart::ColdCorrected),
                 "cold-corrected");
}

TEST(MissRatio, DataRefTraceExtractsLineAddresses)
{
    const auto prog = workload::buildSynthetic(
        workload::standardWorkloadParams("twolf"));
    const auto trace = dataRefTrace(prog, 50'000);
    EXPECT_GT(trace.size(), 5'000u);
    for (std::size_t i = 0; i < trace.size(); i += 997)
        EXPECT_EQ(trace[i] % 64, 0u);
}

TEST(MissRatio, ScheduleBeyondTraceThrows)
{
    const auto trace = randomTrace(10, 100, 1);
    const std::vector<core::Cluster> schedule{{50, 100}};
    EXPECT_THROW(estimateMissRatio(smallCache(), trace, schedule,
                                   ColdStart::CountAll),
                 InternalError);
}

} // namespace
} // namespace rsr::cachestudy
