/**
 * @file
 * Sparse-memory tests: zero-fill semantics, width handling, page-boundary
 * crossing, and sparse allocation behaviour.
 */

#include <gtest/gtest.h>

#include "mem/memory.hh"

namespace rsr::mem
{
namespace
{

TEST(Memory, ReadsZeroWhenUntouched)
{
    Memory m;
    EXPECT_EQ(m.read(0x1234, 8), 0u);
    EXPECT_EQ(m.readByte(0xdeadbeef), 0u);
    EXPECT_EQ(m.numPages(), 0u);
}

TEST(Memory, ReadBackAllWidths)
{
    Memory m;
    m.write(0x100, 0x1122334455667788ull, 8);
    EXPECT_EQ(m.read(0x100, 8), 0x1122334455667788ull);
    EXPECT_EQ(m.read(0x100, 4), 0x55667788u);
    EXPECT_EQ(m.read(0x100, 2), 0x7788u);
    EXPECT_EQ(m.read(0x100, 1), 0x88u);
    EXPECT_EQ(m.read(0x104, 4), 0x11223344u);
}

TEST(Memory, LittleEndianBytes)
{
    Memory m;
    m.write(0x40, 0xaabb, 2);
    EXPECT_EQ(m.readByte(0x40), 0xbbu);
    EXPECT_EQ(m.readByte(0x41), 0xaau);
}

TEST(Memory, PartialOverwrite)
{
    Memory m;
    m.write(0x200, 0xffffffffffffffffull, 8);
    m.write(0x202, 0x00, 1);
    EXPECT_EQ(m.read(0x200, 8), 0xffffffffff00ffffull);
}

TEST(Memory, CrossPageAccess)
{
    Memory m;
    const std::uint64_t addr = Memory::pageSize - 4;
    m.write(addr, 0x0123456789abcdefull, 8);
    EXPECT_EQ(m.read(addr, 8), 0x0123456789abcdefull);
    EXPECT_EQ(m.numPages(), 2u);
}

TEST(Memory, SparseAllocation)
{
    Memory m;
    m.writeByte(0, 1);
    m.writeByte(100 * Memory::pageSize, 2);
    m.writeByte(1ull << 40, 3);
    EXPECT_EQ(m.numPages(), 3u);
    EXPECT_EQ(m.readByte(0), 1u);
    EXPECT_EQ(m.readByte(100 * Memory::pageSize), 2u);
    EXPECT_EQ(m.readByte(1ull << 40), 3u);
}

TEST(Memory, ReadWordForFetch)
{
    Memory m;
    m.write(0x1000, 0xcafebabe, 4);
    EXPECT_EQ(m.readWord(0x1000), 0xcafebabeu);
}

TEST(Memory, ClearDropsEverything)
{
    Memory m;
    m.write(0x300, 42, 8);
    m.clear();
    EXPECT_EQ(m.numPages(), 0u);
    EXPECT_EQ(m.read(0x300, 8), 0u);
}

TEST(Memory, HighAddressesIndependent)
{
    Memory m;
    m.write(0x7fff0000, 7, 8);
    m.write(0x7fff0000 + Memory::pageSize, 9, 8);
    EXPECT_EQ(m.read(0x7fff0000, 8), 7u);
    EXPECT_EQ(m.read(0x7fff0000 + Memory::pageSize, 8), 9u);
}

} // namespace
} // namespace rsr::mem
