/**
 * @file
 * Regression tests for output determinism: the profiles that feed
 * stats/CSV/JSON emission (BBV intervals, workload characterization,
 * reuse-latency warm-up lengths) must serialize byte-identically across
 * two independent runs, and BBV interval vectors must be sorted so no
 * hash-map iteration order leaks into downstream floating-point sums.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <sstream>

#include "core/regimen.hh"
#include "core/reuse_latency.hh"
#include "simpoint/bbv.hh"
#include "util/random.hh"
#include "workload/characterize.hh"
#include "workload/synthetic.hh"

namespace rsr
{
namespace
{

/** Serialize with hexfloat so equal strings mean bit-equal doubles. */
std::string
serialize(const simpoint::BbvProfile &prof)
{
    std::ostringstream os;
    os << std::hexfloat;
    os << prof.intervalSize << "/" << prof.numBlocks << "\n";
    for (const auto &iv : prof.intervals) {
        os << iv.totalInsts << ":";
        for (const auto &[block, count] : iv.counts)
            os << " " << block << "=" << count;
        os << "\n";
    }
    return os.str();
}

std::string
serialize(const std::vector<std::vector<double>> &proj)
{
    std::ostringstream os;
    os << std::hexfloat;
    for (const auto &row : proj) {
        for (double v : row)
            os << v << ",";
        os << "\n";
    }
    return os.str();
}

std::string
serialize(const workload::WorkloadProfile &p)
{
    std::ostringstream os;
    os << std::hexfloat;
    os << p.insts << "," << p.loadFrac << "," << p.storeFrac << ","
       << p.condBranchFrac << "," << p.callFrac << "," << p.fpFrac
       << "," << p.condTakenFrac << "," << p.branchBiasIndex << ","
       << p.dataLines << "," << p.codeLines << ","
       << p.staticCondBranches << "," << p.reuseP50 << "," << p.reuseP90
       << "," << p.reuseP99;
    return os.str();
}

std::string
serialize(const core::ReuseLatencyProfile &p)
{
    std::ostringstream os;
    os << p.profiledInsts << ":";
    for (std::uint64_t w : p.warmupLengths)
        os << " " << w;
    return os.str();
}

TEST(OutputDeterminism, BbvProfileIsByteIdenticalAcrossRuns)
{
    const auto prog = workload::buildSynthetic(
        workload::standardWorkloadParams("gcc"));
    const auto a = simpoint::profileBbv(prog, 120'000, 10'000);
    const auto b = simpoint::profileBbv(prog, 120'000, 10'000);
    EXPECT_EQ(serialize(a), serialize(b));

    // The per-interval vectors are sorted by block id: downstream
    // projection sums doubles in this order, so sortedness is what
    // keeps clustering deterministic.
    for (const auto &iv : a.intervals)
        EXPECT_TRUE(std::is_sorted(iv.counts.begin(), iv.counts.end()));
}

TEST(OutputDeterminism, BbvProjectionIsByteIdenticalAcrossRuns)
{
    const auto prog = workload::buildSynthetic(
        workload::standardWorkloadParams("gcc"));
    const auto prof = simpoint::profileBbv(prog, 120'000, 10'000);
    const auto a = simpoint::projectBbv(prof, 15, 1234);
    const auto b = simpoint::projectBbv(prof, 15, 1234);
    EXPECT_EQ(serialize(a), serialize(b));
}

TEST(OutputDeterminism, CharacterizationIsByteIdenticalAcrossRuns)
{
    for (const char *name : {"gcc", "mcf", "twolf"}) {
        const auto prog = workload::buildSynthetic(
            workload::standardWorkloadParams(name));
        const auto a = workload::characterize(prog, 150'000);
        const auto b = workload::characterize(prog, 150'000);
        EXPECT_EQ(serialize(a), serialize(b)) << name;
    }
}

TEST(OutputDeterminism, ReuseLatencyProfileIsByteIdenticalAcrossRuns)
{
    const auto prog = workload::buildSynthetic(
        workload::standardWorkloadParams("twolf"));
    core::SamplingRegimen regimen{10, 2000};
    Rng rng_a(7);
    const auto sched_a = core::makeSchedule(regimen, 200'000, rng_a);
    Rng rng_b(7);
    const auto sched_b = core::makeSchedule(regimen, 200'000, rng_b);

    const auto a = core::profileReuseLatency(
        prog, sched_a, core::ReuseLatencyKind::Mrrl, 0.99);
    const auto b = core::profileReuseLatency(
        prog, sched_b, core::ReuseLatencyKind::Mrrl, 0.99);
    EXPECT_EQ(serialize(a), serialize(b));
}

} // namespace
} // namespace rsr
