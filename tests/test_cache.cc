/**
 * @file
 * Cache tests: geometry, LRU replacement, write policies, the reverse-
 * reconstruction hooks (including the paper's Figure-2 worked example),
 * and the exactness property — for load-only reference streams, reverse
 * reconstruction at 100% reproduces forward LRU state exactly (tags and
 * recency order).
 */

#include <gtest/gtest.h>

#include <set>
#include <tuple>
#include <vector>

#include "cache/cache.hh"
#include "util/random.hh"

namespace rsr::cache
{
namespace
{

CacheParams
smallParams(unsigned assoc = 4,
            WritePolicy wp = WritePolicy::WriteThroughNoAllocate,
            unsigned sets = 4)
{
    CacheParams p;
    p.name = "test";
    p.lineBytes = 64;
    p.assoc = assoc;
    p.sizeBytes = std::uint64_t{64} * assoc * sets;
    p.writePolicy = wp;
    return p;
}

/** Address mapping to @p set with distinct tag @p tag. */
std::uint64_t
addrFor(const Cache &c, std::uint64_t set, std::uint64_t tag)
{
    return (tag * c.numSets() + set) * 64;
}

TEST(Cache, GeometryDerived)
{
    Cache c(smallParams(4, WritePolicy::WriteThroughNoAllocate, 16));
    EXPECT_EQ(c.numSets(), 16u);
}

TEST(Cache, PaperL1Geometry)
{
    CacheParams p{"dl1", 32 * 1024, 4, 64,
                  WritePolicy::WriteThroughNoAllocate, 2};
    Cache c(p);
    EXPECT_EQ(c.numSets(), 128u);
}

TEST(Cache, MissThenHit)
{
    Cache c(smallParams());
    const auto a = addrFor(c, 0, 1);
    EXPECT_FALSE(c.access(a, false).hit);
    EXPECT_TRUE(c.access(a, false).hit);
    EXPECT_EQ(c.stats().hits, 1u);
    EXPECT_EQ(c.stats().misses, 1u);
}

TEST(Cache, SameSetDifferentTagsConflict)
{
    Cache c(smallParams(2));
    const auto a = addrFor(c, 1, 1);
    const auto b = addrFor(c, 1, 2);
    const auto d = addrFor(c, 1, 3);
    c.access(a, false);
    c.access(b, false);
    c.access(d, false); // evicts a (LRU)
    EXPECT_FALSE(c.probe(a));
    EXPECT_TRUE(c.probe(b));
    EXPECT_TRUE(c.probe(d));
}

TEST(Cache, LruOrderTracksTouches)
{
    Cache c(smallParams(4));
    const auto a = addrFor(c, 0, 1);
    const auto b = addrFor(c, 0, 2);
    c.access(a, false);
    c.access(b, false);
    EXPECT_EQ(c.recencyOf(b), 0);
    EXPECT_EQ(c.recencyOf(a), 1);
    c.access(a, false); // re-touch
    EXPECT_EQ(c.recencyOf(a), 0);
    EXPECT_EQ(c.recencyOf(b), 1);
}

TEST(Cache, WtnaStoreMissDoesNotAllocate)
{
    Cache c(smallParams(4, WritePolicy::WriteThroughNoAllocate));
    const auto a = addrFor(c, 0, 1);
    const auto out = c.access(a, true);
    EXPECT_FALSE(out.hit);
    EXPECT_FALSE(out.allocated);
    EXPECT_FALSE(c.probe(a));
}

TEST(Cache, WtnaStoreHitUpdatesLruNotDirty)
{
    Cache c(smallParams(4, WritePolicy::WriteThroughNoAllocate));
    const auto a = addrFor(c, 0, 1);
    const auto b = addrFor(c, 0, 2);
    c.access(a, false);
    c.access(b, false);
    c.access(a, true); // store hit re-ranks a
    EXPECT_EQ(c.recencyOf(a), 0);
    // Fill the set; no writeback should ever occur under WT.
    for (std::uint64_t t = 3; t < 10; ++t)
        EXPECT_FALSE(c.access(addrFor(c, 0, t), false).victimDirty);
    EXPECT_EQ(c.stats().writebacks, 0u);
}

TEST(Cache, WbwaStoreMissAllocatesDirty)
{
    Cache c(smallParams(4, WritePolicy::WriteBackAllocate));
    const auto a = addrFor(c, 0, 1);
    const auto out = c.access(a, true);
    EXPECT_TRUE(out.allocated);
    EXPECT_TRUE(c.probe(a));
}

TEST(Cache, WbwaDirtyEvictionReportsWriteback)
{
    Cache c(smallParams(2, WritePolicy::WriteBackAllocate));
    const auto a = addrFor(c, 0, 1);
    c.access(a, true); // dirty
    c.access(addrFor(c, 0, 2), false);
    const auto out = c.access(addrFor(c, 0, 3), false); // evicts a
    EXPECT_TRUE(out.victimDirty);
    EXPECT_EQ(out.victimLineAddr, a);
    EXPECT_EQ(c.stats().writebacks, 1u);
}

TEST(Cache, CleanEvictionNoWriteback)
{
    Cache c(smallParams(2, WritePolicy::WriteBackAllocate));
    c.access(addrFor(c, 0, 1), false);
    c.access(addrFor(c, 0, 2), false);
    const auto out = c.access(addrFor(c, 0, 3), false);
    EXPECT_FALSE(out.victimDirty);
}

TEST(Cache, InvalidateAllEmptiesCache)
{
    Cache c(smallParams());
    c.access(addrFor(c, 0, 1), false);
    c.invalidateAll();
    EXPECT_FALSE(c.probe(addrFor(c, 0, 1)));
}

// ---------------------------------------------------------------------------
// Reverse reconstruction.
// ---------------------------------------------------------------------------

TEST(CacheRecon, Figure2WorkedExample)
{
    // Paper Figure 2: 4-way set holding (MRU..LRU) D, C, B, A; the skip
    // region applies the forward stream E, A, F, C. Forward simulation
    // ends with (MRU..LRU) C, F, A, E. Reverse reconstruction scans
    // C, F, A, E and must produce the same content with C most recent.
    Cache fwd(smallParams(4));
    Cache rev(smallParams(4));
    const auto A = addrFor(fwd, 0, 1), B = addrFor(fwd, 0, 2),
               C = addrFor(fwd, 0, 3), D = addrFor(fwd, 0, 4),
               E = addrFor(fwd, 0, 5), F = addrFor(fwd, 0, 6);
    for (Cache *c : {&fwd, &rev})
        for (auto addr : {A, B, C, D})
            c->access(addr, false);

    for (auto addr : {E, A, F, C})
        fwd.access(addr, false);

    rev.beginReconstruction();
    for (auto addr : {C, F, A, E})
        rev.reconstructRef(addr);

    for (auto addr : {C, F, A, E}) {
        EXPECT_EQ(fwd.recencyOf(addr), rev.recencyOf(addr))
            << "line tag " << addr / 64;
    }
    EXPECT_EQ(rev.recencyOf(C), 0);
    EXPECT_EQ(rev.recencyOf(F), 1);
    EXPECT_EQ(rev.recencyOf(A), 2);
    EXPECT_EQ(rev.recencyOf(E), 3);
    EXPECT_FALSE(rev.probe(B));
    EXPECT_FALSE(rev.probe(D));
}

TEST(CacheRecon, RedundantRefsIgnored)
{
    Cache c(smallParams(4));
    const auto a = addrFor(c, 0, 1);
    c.beginReconstruction();
    EXPECT_TRUE(c.reconstructRef(a));
    EXPECT_FALSE(c.reconstructRef(a)); // older ref to same block
    EXPECT_EQ(c.stats().reconIgnored, 1u);
}

TEST(CacheRecon, FullyReconstructedSetIgnoresOlderRefs)
{
    Cache c(smallParams(2));
    c.beginReconstruction();
    EXPECT_TRUE(c.reconstructRef(addrFor(c, 0, 1)));
    EXPECT_TRUE(c.reconstructRef(addrFor(c, 0, 2)));
    EXPECT_FALSE(c.reconstructRef(addrFor(c, 0, 3)));
    EXPECT_FALSE(c.probe(addrFor(c, 0, 3)));
}

TEST(CacheRecon, StaleHitGetsRerankedOnly)
{
    Cache c(smallParams(4));
    const auto a = addrFor(c, 0, 1);
    const auto b = addrFor(c, 0, 2);
    c.access(a, false);
    c.access(b, false); // b MRU, a next
    c.beginReconstruction();
    EXPECT_TRUE(c.reconstructRef(a)); // present in a stale block
    EXPECT_EQ(c.recencyOf(a), 0);
    EXPECT_TRUE(c.isReconstructed(a));
    EXPECT_FALSE(c.isReconstructed(b));
    EXPECT_TRUE(c.probe(b)); // stale survivor
}

TEST(CacheRecon, InstallsIntoLruMostStaleWay)
{
    Cache c(smallParams(4));
    // Stale content (MRU..LRU): t4 t3 t2 t1.
    for (std::uint64_t t = 1; t <= 4; ++t)
        c.access(addrFor(c, 0, t), false);
    c.beginReconstruction();
    c.reconstructRef(addrFor(c, 0, 9)); // absent: replaces t1 (stale LRU)
    EXPECT_FALSE(c.probe(addrFor(c, 0, 1)));
    EXPECT_TRUE(c.probe(addrFor(c, 0, 2)));
    EXPECT_EQ(c.recencyOf(addrFor(c, 0, 9)), 0);
    // Stale survivors keep relative order below the reconstructed block.
    EXPECT_EQ(c.recencyOf(addrFor(c, 0, 4)), 1);
    EXPECT_EQ(c.recencyOf(addrFor(c, 0, 3)), 2);
    EXPECT_EQ(c.recencyOf(addrFor(c, 0, 2)), 3);
}

TEST(CacheRecon, BeginClearsReconstructedBits)
{
    Cache c(smallParams(4));
    const auto a = addrFor(c, 0, 1);
    c.beginReconstruction();
    c.reconstructRef(a);
    EXPECT_TRUE(c.isReconstructed(a));
    c.beginReconstruction();
    EXPECT_FALSE(c.isReconstructed(a));
    EXPECT_TRUE(c.probe(a)); // contents stay stale, bits clear
}

TEST(CacheRecon, ReconstructedBlocksAreClean)
{
    Cache c(smallParams(2, WritePolicy::WriteBackAllocate));
    c.beginReconstruction();
    c.reconstructRef(addrFor(c, 0, 1));
    c.reconstructRef(addrFor(c, 0, 2));
    // Evicting reconstructed blocks must not produce writebacks.
    c.access(addrFor(c, 0, 3), false);
    c.access(addrFor(c, 0, 4), false);
    EXPECT_EQ(c.stats().writebacks, 0u);
}

/**
 * Exactness property (load-only streams): full reverse reconstruction
 * reproduces forward LRU content and recency exactly, from any stale
 * starting state. Parameterized over associativity and set count.
 */
class ReconExactness
    : public ::testing::TestWithParam<std::tuple<unsigned, unsigned>>
{};

TEST_P(ReconExactness, MatchesForwardWarmingForLoads)
{
    const auto [assoc, sets] = GetParam();
    Cache fwd(smallParams(assoc, WritePolicy::WriteThroughNoAllocate, sets));
    Cache rev(smallParams(assoc, WritePolicy::WriteThroughNoAllocate, sets));

    Rng rng(assoc * 1000 + sets);
    // Shared stale prefix.
    std::vector<std::uint64_t> prefix;
    for (int i = 0; i < 200; ++i)
        prefix.push_back(rng.below(sets * assoc * 3) * 64);
    for (auto a : prefix) {
        fwd.access(a, false);
        rev.access(a, false);
    }

    // Skip-region stream: forward-warm one cache, log for the other.
    std::vector<std::uint64_t> stream;
    for (int i = 0; i < 2000; ++i)
        stream.push_back(rng.below(sets * assoc * 3) * 64);
    for (auto a : stream)
        fwd.access(a, false);

    rev.beginReconstruction();
    for (auto it = stream.rbegin(); it != stream.rend(); ++it)
        rev.reconstructRef(*it);

    // Every line that could exist must agree in presence and recency.
    for (std::uint64_t a = 0; a < sets * assoc * 3 * 64; a += 64)
        EXPECT_EQ(fwd.recencyOf(a), rev.recencyOf(a)) << "line " << a / 64;
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, ReconExactness,
    ::testing::Combine(::testing::Values(1u, 2u, 4u, 8u),
                       ::testing::Values(2u, 8u, 32u)));

} // namespace
} // namespace rsr::cache
