/**
 * @file
 * End-to-end sampled-simulation tests: the controller's phase structure,
 * warm-up policy behaviour over full runs, result accounting, ordering
 * properties between methods, and determinism.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/sampled_sim.hh"
#include "core/warmup.hh"
#include "workload/synthetic.hh"

namespace rsr::core
{
namespace
{

/** Small, fast shared fixture: one workload + scaled machine. */
class SampledRun : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        workload::WorkloadParams p =
            workload::standardWorkloadParams("twolf");
        prog = new func::Program(workload::buildSynthetic(p));

        cfg = new SampledConfig();
        cfg->totalInsts = 600'000;
        cfg->regimen = {20, 2000};
        cfg->machine = MachineConfig::scaledDefault();

        true_ipc = runFull(*prog, cfg->totalInsts, cfg->machine).ipc();
    }

    static void
    TearDownTestSuite()
    {
        delete prog;
        delete cfg;
        prog = nullptr;
        cfg = nullptr;
    }

    static func::Program *prog;
    static SampledConfig *cfg;
    static double true_ipc;
};

func::Program *SampledRun::prog = nullptr;
SampledConfig *SampledRun::cfg = nullptr;
double SampledRun::true_ipc = 0.0;

TEST_F(SampledRun, TrueIpcSane)
{
    EXPECT_GT(true_ipc, 0.05);
    EXPECT_LT(true_ipc, 4.0);
}

TEST_F(SampledRun, AccountingAddsUp)
{
    NoWarmup none;
    const auto r = runSampled(*prog, none, *cfg);
    EXPECT_EQ(r.clusterIpc.size(), cfg->regimen.numClusters);
    EXPECT_EQ(r.hotInsts, cfg->regimen.sampledInsts());
    EXPECT_GT(r.skippedInsts, 0u);
    EXPECT_LE(r.skippedInsts + r.hotInsts, cfg->totalInsts);
    EXPECT_GT(r.hotCycles, r.hotInsts / 8); // IPC can't exceed width
    EXPECT_EQ(r.warmWork.totalUpdates(), 0u);
    EXPECT_EQ(r.warmWork.loggedRecords, 0u);
    EXPECT_GT(r.seconds, 0.0);
}

TEST_F(SampledRun, DeterministicAcrossRuns)
{
    auto p1 = ReverseReconstructionWarmup::full(0.4);
    auto p2 = ReverseReconstructionWarmup::full(0.4);
    const auto r1 = runSampled(*prog, *p1, *cfg);
    const auto r2 = runSampled(*prog, *p2, *cfg);
    ASSERT_EQ(r1.clusterIpc.size(), r2.clusterIpc.size());
    for (std::size_t i = 0; i < r1.clusterIpc.size(); ++i)
        EXPECT_DOUBLE_EQ(r1.clusterIpc[i], r2.clusterIpc[i]);
    EXPECT_EQ(r1.warmWork.loggedRecords, r2.warmWork.loggedRecords);
}

TEST_F(SampledRun, ScheduleSeedHoldsSamplingBiasConstant)
{
    // Different policies must measure the identical clusters: with the
    // same seed, the hot instruction count and cluster count agree and
    // only warm-up state differs.
    NoWarmup none;
    auto smarts = FunctionalWarmup::smarts();
    const auto r1 = runSampled(*prog, none, *cfg);
    const auto r2 = runSampled(*prog, *smarts, *cfg);
    EXPECT_EQ(r1.hotInsts, r2.hotInsts);
    EXPECT_EQ(r1.skippedInsts, r2.skippedInsts);
}

TEST_F(SampledRun, SmartsBeatsNoWarmup)
{
    NoWarmup none;
    auto smarts = FunctionalWarmup::smarts();
    const auto rn = runSampled(*prog, none, *cfg);
    const auto rs = runSampled(*prog, *smarts, *cfg);
    EXPECT_LT(rs.estimate.relativeError(true_ipc),
              rn.estimate.relativeError(true_ipc));
}

TEST_F(SampledRun, RsrAccuracyNearSmarts)
{
    auto smarts = FunctionalWarmup::smarts();
    auto rsr = ReverseReconstructionWarmup::full(1.0);
    const auto rs = runSampled(*prog, *smarts, *cfg);
    const auto rr = runSampled(*prog, *rsr, *cfg);
    const double gap = std::fabs(rr.estimate.mean - rs.estimate.mean) /
                       rs.estimate.mean;
    EXPECT_LT(gap, 0.10) << "RSR estimate " << rr.estimate.mean
                         << " vs SMARTS " << rs.estimate.mean;
}

TEST_F(SampledRun, RsrAppliesFarFewerUpdatesThanSmarts)
{
    auto smarts = FunctionalWarmup::smarts();
    auto rsr = ReverseReconstructionWarmup::full(0.2);
    const auto rs = runSampled(*prog, *smarts, *cfg);
    const auto rr = runSampled(*prog, *rsr, *cfg);
    EXPECT_LT(rr.warmWork.totalUpdates() * 3, rs.warmWork.totalUpdates());
    EXPECT_GT(rr.warmWork.loggedRecords, 0u);
    EXPECT_GT(rr.warmWork.peakLogBytes, 0u);
}

TEST_F(SampledRun, HigherFractionAppliesMoreCacheUpdates)
{
    auto r20 = ReverseReconstructionWarmup::cacheOnly(0.2);
    auto r80 = ReverseReconstructionWarmup::cacheOnly(0.8);
    const auto a = runSampled(*prog, *r20, *cfg);
    const auto b = runSampled(*prog, *r80, *cfg);
    EXPECT_LT(a.warmWork.reconstructionUpdates,
              b.warmWork.reconstructionUpdates);
    // The log itself is identical: everything is always recorded.
    EXPECT_EQ(a.warmWork.loggedRecords, b.warmWork.loggedRecords);
}

TEST_F(SampledRun, FixedPeriodUpdatesScaleWithFraction)
{
    auto f20 = FunctionalWarmup::fixedPeriod(0.2);
    auto f80 = FunctionalWarmup::fixedPeriod(0.8);
    const auto a = runSampled(*prog, *f20, *cfg);
    const auto b = runSampled(*prog, *f80, *cfg);
    EXPECT_GT(b.warmWork.functionalUpdates,
              3 * a.warmWork.functionalUpdates);
}

TEST_F(SampledRun, SmartsUpdatesBoundedByPolicyScope)
{
    auto cache_only = FunctionalWarmup::smartsCacheOnly();
    auto bp_only = FunctionalWarmup::smartsBpOnly();
    auto both = FunctionalWarmup::smarts();
    const auto rc = runSampled(*prog, *cache_only, *cfg);
    const auto rb = runSampled(*prog, *bp_only, *cfg);
    const auto rboth = runSampled(*prog, *both, *cfg);
    EXPECT_EQ(rboth.warmWork.functionalUpdates,
              rc.warmWork.functionalUpdates +
                  rb.warmWork.functionalUpdates);
}

TEST_F(SampledRun, PolicyNames)
{
    EXPECT_EQ(NoWarmup().name(), "None");
    EXPECT_EQ(FunctionalWarmup::smarts()->name(), "S$BP");
    EXPECT_EQ(FunctionalWarmup::smartsCacheOnly()->name(), "S$");
    EXPECT_EQ(FunctionalWarmup::smartsBpOnly()->name(), "SBP");
    EXPECT_EQ(FunctionalWarmup::fixedPeriod(0.4)->name(), "FP (40%)");
    EXPECT_EQ(ReverseReconstructionWarmup::full(0.2)->name(),
              "R$BP (20%)");
    EXPECT_EQ(ReverseReconstructionWarmup::cacheOnly(0.8)->name(),
              "R$ (80%)");
    EXPECT_EQ(ReverseReconstructionWarmup::bpOnly()->name(), "RBP");
}

TEST_F(SampledRun, Table2PolicyListComplete)
{
    const auto policies = makeTable2Policies();
    ASSERT_EQ(policies.size(), 16u);
    std::vector<std::string> names;
    for (const auto &p : policies)
        names.push_back(p->name());
    for (const char *want :
         {"None", "FP (20%)", "FP (40%)", "FP (80%)", "S$", "SBP", "S$BP",
          "R$ (20%)", "R$ (40%)", "R$ (80%)", "R$ (100%)", "RBP",
          "R$BP (20%)", "R$BP (40%)", "R$BP (80%)", "R$BP (100%)"}) {
        EXPECT_NE(std::find(names.begin(), names.end(), want),
                  names.end())
            << want;
    }
}

TEST_F(SampledRun, EstimateConsistentWithClusterIpcs)
{
    NoWarmup none;
    const auto r = runSampled(*prog, none, *cfg);
    const auto e = summarizeClusters(r.clusterIpc);
    EXPECT_DOUBLE_EQ(r.estimate.mean, e.mean);
    EXPECT_DOUBLE_EQ(r.estimate.stdErr, e.stdErr);
}

TEST_F(SampledRun, AggregateIpcPositiveAndBounded)
{
    NoWarmup none;
    const auto r = runSampled(*prog, none, *cfg);
    EXPECT_GT(r.aggregateIpc(), 0.0);
    EXPECT_LE(r.aggregateIpc(), 4.0);
}

TEST(SampledEdge, FullCoverageRegimen)
{
    // Clusters covering the entire population: skip regions are empty
    // and every policy degenerates to contiguous simulation.
    workload::WorkloadParams p = workload::standardWorkloadParams("twolf");
    const auto prog = workload::buildSynthetic(p);
    SampledConfig cfg;
    cfg.totalInsts = 40'000;
    cfg.regimen = {10, 4000};
    cfg.machine = MachineConfig::scaledDefault();
    auto rsr = ReverseReconstructionWarmup::full(0.2);
    const auto r = runSampled(prog, *rsr, cfg);
    EXPECT_EQ(r.hotInsts, 40'000u);
    EXPECT_EQ(r.skippedInsts, 0u);
}

TEST(SampledEdge, SingleCluster)
{
    workload::WorkloadParams p = workload::standardWorkloadParams("twolf");
    const auto prog = workload::buildSynthetic(p);
    SampledConfig cfg;
    cfg.totalInsts = 100'000;
    cfg.regimen = {1, 5000};
    cfg.machine = MachineConfig::scaledDefault();
    auto smarts = FunctionalWarmup::smarts();
    const auto r = runSampled(prog, *smarts, cfg);
    EXPECT_EQ(r.clusterIpc.size(), 1u);
    EXPECT_DOUBLE_EQ(r.estimate.stdErr, 0.0);
}

} // namespace
} // namespace rsr::core
