/**
 * @file
 * Unit tests for the util module: bit helpers, the deterministic RNG, and
 * the table formatter.
 */

#include <gtest/gtest.h>

#include <chrono>
#include <cmath>
#include <limits>
#include <set>
#include <thread>

#include "util/bitutil.hh"
#include "util/deadline.hh"
#include "util/random.hh"
#include "util/table.hh"
#include "util/timer.hh"

namespace rsr
{
namespace
{

TEST(BitUtil, PowerOfTwo)
{
    EXPECT_TRUE(isPowerOf2(1));
    EXPECT_TRUE(isPowerOf2(2));
    EXPECT_TRUE(isPowerOf2(1ull << 40));
    EXPECT_FALSE(isPowerOf2(0));
    EXPECT_FALSE(isPowerOf2(3));
    EXPECT_FALSE(isPowerOf2(12));
}

TEST(BitUtil, FloorLog2)
{
    EXPECT_EQ(floorLog2(1), 0u);
    EXPECT_EQ(floorLog2(2), 1u);
    EXPECT_EQ(floorLog2(3), 1u);
    EXPECT_EQ(floorLog2(64), 6u);
    EXPECT_EQ(floorLog2((1ull << 33) + 5), 33u);
}

TEST(BitUtil, CeilLog2)
{
    EXPECT_EQ(ceilLog2(1), 0u);
    EXPECT_EQ(ceilLog2(2), 1u);
    EXPECT_EQ(ceilLog2(3), 2u);
    EXPECT_EQ(ceilLog2(64), 6u);
    EXPECT_EQ(ceilLog2(65), 7u);
}

TEST(BitUtil, MaskBits)
{
    EXPECT_EQ(maskBits(0), 0u);
    EXPECT_EQ(maskBits(1), 1u);
    EXPECT_EQ(maskBits(16), 0xffffu);
    EXPECT_EQ(maskBits(64), ~std::uint64_t{0});
}

TEST(BitUtil, BitsExtract)
{
    EXPECT_EQ(bits(0xabcd, 0, 4), 0xdu);
    EXPECT_EQ(bits(0xabcd, 4, 4), 0xcu);
    EXPECT_EQ(bits(0xabcd, 8, 8), 0xabu);
}

TEST(BitUtil, SignExtend)
{
    EXPECT_EQ(signExtend(0x7fff, 16), 0x7fff);
    EXPECT_EQ(signExtend(0x8000, 16), -0x8000);
    EXPECT_EQ(signExtend(0xffff, 16), -1);
    EXPECT_EQ(signExtend(0x1, 1), -1);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, SeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        same += a.next() == b.next();
    EXPECT_LT(same, 2);
}

TEST(Rng, BelowInRange)
{
    Rng r(7);
    for (int i = 0; i < 1000; ++i)
        EXPECT_LT(r.below(13), 13u);
}

TEST(Rng, BelowRoughlyUniform)
{
    Rng r(99);
    int buckets[8] = {};
    const int draws = 80000;
    for (int i = 0; i < draws; ++i)
        ++buckets[r.below(8)];
    for (int b = 0; b < 8; ++b) {
        EXPECT_GT(buckets[b], draws / 8 * 0.9);
        EXPECT_LT(buckets[b], draws / 8 * 1.1);
    }
}

TEST(Rng, RangeInclusive)
{
    Rng r(3);
    std::set<std::int64_t> seen;
    for (int i = 0; i < 200; ++i) {
        const auto v = r.range(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        seen.insert(v);
    }
    EXPECT_EQ(seen.size(), 5u);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(5);
    double sum = 0;
    for (int i = 0; i < 10000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(Rng, ChanceFrequency)
{
    Rng r(11);
    int hits = 0;
    for (int i = 0; i < 20000; ++i)
        hits += r.chance(0.3);
    EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(Rng, ForkIndependent)
{
    Rng a(42);
    Rng child = a.fork();
    EXPECT_NE(a.next(), child.next());
}

TEST(TextTable, RendersAligned)
{
    TextTable t({"name", "value"});
    t.addRow({"x", "1"});
    t.addRow({"longer", "22"});
    const std::string out = t.render();
    EXPECT_NE(out.find("name"), std::string::npos);
    EXPECT_NE(out.find("longer"), std::string::npos);
    // Header, separator, two rows.
    EXPECT_EQ(std::count(out.begin(), out.end(), '\n'), 4);
}

TEST(TextTable, Csv)
{
    TextTable t({"a", "b"});
    t.addRow({"1", "2"});
    EXPECT_EQ(t.csv(), "a,b\n1,2\n");
}

TEST(TextTable, NumFormatting)
{
    EXPECT_EQ(TextTable::num(1.23456, 2), "1.23");
    EXPECT_EQ(TextTable::num(2.0, 0), "2");
}

TEST(WallTimer, MonotonicNonNegative)
{
    WallTimer t;
    const double a = t.seconds();
    const double b = t.seconds();
    EXPECT_GE(a, 0.0);
    EXPECT_GE(b, a);
}

TEST(Deadline, NonPositiveSecondsIsTheUnlimitedSentinel)
{
    for (const double seconds : {0.0, -1.0, -1e300}) {
        const Deadline d(seconds);
        EXPECT_TRUE(d.unlimited());
        EXPECT_FALSE(d.expired());
        EXPECT_TRUE(std::isinf(d.remainingSeconds()));
        // poll(2) callers get the cap, never a blocking -1 or a 0 spin.
        EXPECT_EQ(d.pollTimeoutMs(250), 250);
    }
}

TEST(Deadline, HugeSecondsClampInsteadOfOverflowing)
{
    // 1e300 seconds overflows the steady_clock duration cast; the
    // constructor must clamp to maxSeconds, not wrap into the past.
    for (const double seconds :
         {Deadline::maxSeconds, Deadline::maxSeconds * 2, 1e300,
          std::numeric_limits<double>::infinity()}) {
        const Deadline d(seconds);
        EXPECT_FALSE(d.unlimited());
        EXPECT_FALSE(d.expired());
        const double remaining = d.remainingSeconds();
        EXPECT_GT(remaining, Deadline::maxSeconds * 0.99);
        EXPECT_LE(remaining, Deadline::maxSeconds);
    }
}

TEST(Deadline, ExpiryClampsRemainingToZero)
{
    const Deadline d(0.02);
    EXPECT_FALSE(d.unlimited());
    std::this_thread::sleep_for(std::chrono::milliseconds(40));
    EXPECT_TRUE(d.expired());
    EXPECT_EQ(d.remainingSeconds(), 0.0);
    EXPECT_EQ(d.pollTimeoutMs(100), 0);
}

TEST(Deadline, PollTimeoutRoundsUpAndHonoursTheCap)
{
    // Far-off expiry: the cap wins.
    EXPECT_EQ(Deadline(60.0).pollTimeoutMs(100), 100);

    // Sub-millisecond remainder: rounds *up* to 1, never truncates to a
    // busy-spin 0 while unexpired.
    const Deadline soon(0.05);
    const int ms = soon.pollTimeoutMs(1000);
    EXPECT_GE(ms, 1);
    EXPECT_LE(ms, 51);

    // A zero cap is respected even with time remaining.
    EXPECT_EQ(Deadline(60.0).pollTimeoutMs(0), 0);
}

} // namespace
} // namespace rsr
