/**
 * @file
 * Tests for the extension features: the MRRL-style profiled warm-up
 * baseline and the apply-to-stale PHT resolution mode.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/reuse_latency.hh"
#include "core/sampled_sim.hh"
#include "core/warmup.hh"
#include "workload/synthetic.hh"

namespace rsr::core
{
namespace
{

using isa::BranchKind;

class MrrlFixture : public ::testing::Test
{
  protected:
    static void
    SetUpTestSuite()
    {
        prog = new func::Program(workload::buildSynthetic(
            workload::standardWorkloadParams("twolf")));
        cfg = new SampledConfig();
        cfg->totalInsts = 400'000;
        cfg->regimen = {12, 2000};
        cfg->machine = MachineConfig::scaledDefault();
        Rng rng(cfg->scheduleSeed);
        schedule = new std::vector<Cluster>(
            makeSchedule(cfg->regimen, cfg->totalInsts, rng));
    }

    static void
    TearDownTestSuite()
    {
        delete prog;
        delete cfg;
        delete schedule;
    }

    static func::Program *prog;
    static SampledConfig *cfg;
    static std::vector<Cluster> *schedule;
};

func::Program *MrrlFixture::prog = nullptr;
SampledConfig *MrrlFixture::cfg = nullptr;
std::vector<Cluster> *MrrlFixture::schedule = nullptr;

TEST_F(MrrlFixture, ProfileShapes)
{
    const auto profile = profileReuseLatency(*prog, *schedule,
                                             ReuseLatencyKind::Blrl, 0.995);
    ASSERT_EQ(profile.warmupLengths.size(), schedule->size());
    EXPECT_EQ(profile.profiledInsts,
              schedule->back().start + schedule->back().size);
    for (std::size_t i = 0; i < schedule->size(); ++i) {
        const std::uint64_t skip_len =
            i == 0 ? (*schedule)[0].start
                   : (*schedule)[i].start - ((*schedule)[i - 1].start +
                                             (*schedule)[i - 1].size);
        EXPECT_LE(profile.warmupLengths[i], skip_len);
    }
}

TEST_F(MrrlFixture, HigherPercentileWarmsMore)
{
    const auto lo = profileReuseLatency(*prog, *schedule,
                                        ReuseLatencyKind::Blrl, 0.5);
    const auto hi = profileReuseLatency(*prog, *schedule,
                                        ReuseLatencyKind::Blrl, 0.999);
    std::uint64_t lo_total = 0, hi_total = 0;
    for (std::size_t i = 0; i < lo.warmupLengths.size(); ++i) {
        lo_total += lo.warmupLengths[i];
        hi_total += hi.warmupLengths[i];
        EXPECT_LE(lo.warmupLengths[i], hi.warmupLengths[i]);
    }
    EXPECT_LT(lo_total, hi_total);
}

TEST_F(MrrlFixture, PolicyRunsAndWarms)
{
    ReuseLatencyWarmup policy(profileReuseLatency(
        *prog, *schedule, ReuseLatencyKind::Blrl, 0.995));
    EXPECT_EQ(policy.name(), "BLRL");
    const auto r = runSampled(*prog, policy, *cfg);
    EXPECT_EQ(r.clusterIpc.size(), cfg->regimen.numClusters);
    EXPECT_GT(r.warmWork.functionalUpdates, 0u);
}

TEST_F(MrrlFixture, AccuracyBetweenNoneAndSmarts)
{
    const double true_ipc =
        runFull(*prog, cfg->totalInsts, cfg->machine).ipc();
    NoWarmup none;
    auto smarts = FunctionalWarmup::smarts();
    ReuseLatencyWarmup mrrl(profileReuseLatency(
        *prog, *schedule, ReuseLatencyKind::Mrrl, 0.995));
    const double e_none =
        runSampled(*prog, none, *cfg).estimate.relativeError(true_ipc);
    const double e_smarts =
        runSampled(*prog, *smarts, *cfg).estimate.relativeError(true_ipc);
    const double e_mrrl =
        runSampled(*prog, mrrl, *cfg).estimate.relativeError(true_ipc);
    EXPECT_LT(e_mrrl, e_none);
    // MRRL approximates SMARTS; allow generous slack on a short run.
    EXPECT_LT(e_mrrl, e_smarts + 0.08);
}

TEST_F(MrrlFixture, MrrlAndBlrlBothValid)
{
    const auto mrrl = profileReuseLatency(*prog, *schedule,
                                          ReuseLatencyKind::Mrrl, 0.995);
    const auto blrl = profileReuseLatency(*prog, *schedule,
                                          ReuseLatencyKind::Blrl, 0.995);
    ASSERT_EQ(mrrl.warmupLengths.size(), blrl.warmupLengths.size());
    EXPECT_EQ(mrrl.kind, ReuseLatencyKind::Mrrl);
    EXPECT_EQ(blrl.kind, ReuseLatencyKind::Blrl);
    // Both are clamped to their skip regions; the distributions differ
    // (MRRL counts every in-window reuse, BLRL only boundary crossings),
    // so at least one region should see a different choice.
    bool any_diff = false;
    std::uint64_t mrrl_total = 0;
    for (std::size_t i = 0; i < mrrl.warmupLengths.size(); ++i) {
        any_diff |= mrrl.warmupLengths[i] != blrl.warmupLengths[i];
        mrrl_total += mrrl.warmupLengths[i];
    }
    EXPECT_TRUE(any_diff);
    EXPECT_GT(mrrl_total, 0u);
}

TEST_F(MrrlFixture, MrrlPolicyName)
{
    ReuseLatencyWarmup policy(profileReuseLatency(
        *prog, *schedule, ReuseLatencyKind::Mrrl, 0.9));
    EXPECT_EQ(policy.name(), "MRRL");
}

TEST(ApplyToStale, NameTagged)
{
    ReverseReconstructionWarmup p(true, true, 0.2,
                                  PhtResolveMode::ApplyToStale);
    EXPECT_EQ(p.name(), "R$BP (20%)+stale");
}

TEST(ApplyToStale, ExactWhenStaleValueWasCorrect)
{
    // If the stale counter equals the true pre-skip value, composing the
    // observed outcomes onto it reproduces the trained value exactly,
    // even when the possible-state set is ambiguous.
    branch::PredictorParams pp;
    pp.phtEntries = 256;
    pp.historyBits = 8;
    pp.btbEntries = 16;
    pp.rasEntries = 4;
    branch::GsharePredictor truth(pp), rsr(pp);

    const std::uint64_t pc = 0x4000;
    // Pre-skip: both predictors agree (entry trained to strongly taken
    // under history 0).
    for (int i = 0; i < 3; ++i) {
        truth.setGhr(0);
        truth.warmApply(pc, BranchKind::Conditional, true, pc + 32);
        rsr.setGhr(0);
        rsr.warmApply(pc, BranchKind::Conditional, true, pc + 32);
    }
    truth.setGhr(0);
    rsr.setGhr(0);

    // Skip region: a single not-taken outcome (ambiguous set {0,1,2}).
    SkipLog log;
    log.ghrAtStart = 0;
    log.branches.push_back({pc, pc + 4, BranchKind::Conditional, false});
    truth.warmApply(pc, BranchKind::Conditional, false, pc + 4);

    BranchReconstructor recon(rsr, PhtResolveMode::ApplyToStale);
    recon.begin(log);
    recon.ensurePht(rsr.phtIndexWith(pc, 0));
    EXPECT_EQ(rsr.phtEntry(rsr.phtIndexWith(pc, 0)),
              truth.phtEntry(truth.phtIndexWith(pc, 0)));
    recon.end();
}

TEST(ApplyToStale, EndToEndAtLeastAsAccurateHere)
{
    // On a branchy workload the extension should not be (much) worse
    // than the paper's tie-break; typically it is better.
    const auto prog = workload::buildSynthetic(
        workload::standardWorkloadParams("parser"));
    SampledConfig cfg;
    cfg.totalInsts = 600'000;
    cfg.regimen = {20, 2000};
    cfg.machine = MachineConfig::scaledDefault();
    const double true_ipc =
        runFull(prog, cfg.totalInsts, cfg.machine).ipc();

    ReverseReconstructionWarmup paper(true, true, 1.0,
                                      PhtResolveMode::PaperTieBreak);
    ReverseReconstructionWarmup stale(true, true, 1.0,
                                      PhtResolveMode::ApplyToStale);
    const double e_paper =
        runSampled(prog, paper, cfg).estimate.relativeError(true_ipc);
    const double e_stale =
        runSampled(prog, stale, cfg).estimate.relativeError(true_ipc);
    EXPECT_LT(e_stale, e_paper + 0.05);
}

} // namespace
} // namespace rsr::core
